#![warn(missing_docs)]

//! Accuracy metrics for comparing a true flow-rate curve against an estimate.
//!
//! These are the four metrics of μMon's Appendix E: Euclidean distance,
//! average relative error (ARE), cosine similarity and energy similarity.
//! Each operates on a pair of equal-length sample series — in μMon these are
//! per-window byte (or packet) counts, which are proportional to rates, so the
//! metrics are identical whether applied to counts or to Gbps values scaled by
//! a common factor (except Euclidean distance, which scales linearly).

mod curve;
mod summary;

pub use curve::{align_curves, counts_to_gbps, RateCurve};
pub use summary::{MetricSummary, WorkloadAccuracy};

/// Euclidean (L2) distance between the true curve `f` and the estimate `g`.
///
/// Lower is better; 0 means the estimate is exact.
///
/// # Panics
///
/// Panics if the two series have different lengths.
pub fn euclidean_distance(f: &[f64], g: &[f64]) -> f64 {
    assert_eq_len(f, g);
    f.iter()
        .zip(g)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Average relative error: `mean(|f(t) - g(t)| / f(t))`.
///
/// Windows where the true value is zero are skipped, mirroring the common
/// sketching-literature convention (a relative error against a zero ground
/// truth is undefined); if every true sample is zero the ARE is defined as the
/// mean absolute estimate (so an all-zero estimate of an all-zero truth is 0).
///
/// Lower is better; 0 means the estimate is exact on every non-zero window.
pub fn average_relative_error(f: &[f64], g: &[f64]) -> f64 {
    assert_eq_len(f, g);
    let mut sum = 0.0;
    let mut n = 0usize;
    for (a, b) in f.iter().zip(g) {
        if *a != 0.0 {
            sum += (a - b).abs() / a.abs();
            n += 1;
        }
    }
    if n == 0 {
        return g.iter().map(|b| b.abs()).sum::<f64>() / g.len().max(1) as f64;
    }
    sum / n as f64
}

/// Cosine similarity between the two curves viewed as vectors.
///
/// In `[0, 1]` for non-negative curves (1 is best). If exactly one curve is
/// all-zero the similarity is 0; if both are all-zero it is 1 (they agree).
pub fn cosine_similarity(f: &[f64], g: &[f64]) -> f64 {
    assert_eq_len(f, g);
    let dot: f64 = f.iter().zip(g).map(|(a, b)| a * b).sum();
    let nf: f64 = f.iter().map(|a| a * a).sum::<f64>().sqrt();
    let ng: f64 = g.iter().map(|b| b * b).sum::<f64>().sqrt();
    if nf == 0.0 && ng == 0.0 {
        return 1.0;
    }
    if nf == 0.0 || ng == 0.0 {
        return 0.0;
    }
    dot / (nf * ng)
}

/// Energy similarity: the ratio of the smaller to the larger signal energy
/// (square-root form, per Appendix E).
///
/// In `[0, 1]`; 1 means the curves carry identical energy. Both-zero curves
/// score 1, exactly one zero curve scores 0.
pub fn energy_similarity(f: &[f64], g: &[f64]) -> f64 {
    assert_eq_len(f, g);
    let ef: f64 = f.iter().map(|a| a * a).sum();
    let eg: f64 = g.iter().map(|b| b * b).sum();
    if ef == 0.0 && eg == 0.0 {
        return 1.0;
    }
    if ef == 0.0 || eg == 0.0 {
        return 0.0;
    }
    if ef <= eg {
        (ef / eg).sqrt()
    } else {
        (eg / ef).sqrt()
    }
}

/// Normalized mean squared error: `Σ(f−g)² / Σf²`.
///
/// Lower is better; 0 means the estimate is exact, 1 is "as wrong as
/// predicting all-zero". If the truth carries no energy the error is
/// normalized by the sample count instead (`Σg²/n`), keeping the result
/// finite — an all-zero estimate of an all-zero truth is 0.
pub fn nmse(f: &[f64], g: &[f64]) -> f64 {
    assert_eq_len(f, g);
    let se: f64 = f.iter().zip(g).map(|(a, b)| (a - b) * (a - b)).sum();
    let ef: f64 = f.iter().map(|a| a * a).sum();
    if ef == 0.0 {
        return se / f.len().max(1) as f64;
    }
    se / ef
}

/// Burst-detection recall: of the windows where the true curve is at or
/// above `threshold` (the bursts), the fraction where the estimate also
/// reaches `threshold`.
///
/// In `[0, 1]`, higher is better. If the truth never crosses the threshold
/// there is nothing to detect and the recall is defined as 1.
///
/// # Panics
///
/// Panics on length mismatch or a non-positive threshold (a threshold of 0
/// would make every window a burst).
pub fn burst_recall(f: &[f64], g: &[f64], threshold: f64) -> f64 {
    assert_eq_len(f, g);
    assert!(threshold > 0.0, "burst threshold must be positive");
    let mut bursts = 0usize;
    let mut detected = 0usize;
    for (a, b) in f.iter().zip(g) {
        if *a >= threshold {
            bursts += 1;
            if *b >= threshold {
                detected += 1;
            }
        }
    }
    if bursts == 0 {
        return 1.0;
    }
    detected as f64 / bursts as f64
}

/// Heavy-hitter F1: compares the top-`k` key sets of two `(key, total)`
/// lists (e.g. per-flow byte totals, truth vs estimate).
///
/// Both lists are ranked by descending total with ties broken by ascending
/// key (so the result is deterministic), truncated to `k`, and compared as
/// sets: F1 = 2·|∩| / (|truth_top| + |est_top|). In `[0, 1]`, higher is
/// better; two empty lists score 1.
pub fn heavy_hitter_f1(truth: &[(u64, f64)], estimate: &[(u64, f64)], k: usize) -> f64 {
    let top = |items: &[(u64, f64)]| -> std::collections::BTreeSet<u64> {
        let mut sorted: Vec<(u64, f64)> = items.to_vec();
        sorted.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        sorted.iter().take(k).map(|(id, _)| *id).collect()
    };
    let t = top(truth);
    let e = top(estimate);
    if t.is_empty() && e.is_empty() {
        return 1.0;
    }
    let inter = t.intersection(&e).count();
    2.0 * inter as f64 / (t.len() + e.len()) as f64
}

/// All four Appendix-E metrics computed for one truth/estimate pair.
pub fn all_metrics(truth: &[f64], estimate: &[f64]) -> MetricSummary {
    MetricSummary {
        euclidean: euclidean_distance(truth, estimate),
        are: average_relative_error(truth, estimate),
        cosine: cosine_similarity(truth, estimate),
        energy: energy_similarity(truth, estimate),
    }
}

fn assert_eq_len(f: &[f64], g: &[f64]) {
    assert_eq!(
        f.len(),
        g.len(),
        "metric inputs must have equal length ({} vs {})",
        f.len(),
        g.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_of_identical_curves_is_zero() {
        let f = [1.0, 2.0, 3.0, 0.0];
        assert_eq!(euclidean_distance(&f, &f), 0.0);
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let f = [3.0, 0.0];
        let g = [0.0, 4.0];
        assert!((euclidean_distance(&f, &g) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn are_skips_zero_truth_windows() {
        let f = [0.0, 10.0];
        let g = [5.0, 5.0];
        // Only the second window counts: |10-5|/10 = 0.5.
        assert!((average_relative_error(&f, &g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn are_of_all_zero_truth_is_mean_abs_estimate() {
        let f = [0.0, 0.0];
        assert!((average_relative_error(&f, &[2.0, 4.0]) - 3.0).abs() < 1e-12);
        assert_eq!(average_relative_error(&f, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_bounds_and_perfect_score() {
        let f = [1.0, 2.0, 3.0];
        assert!((cosine_similarity(&f, &f) - 1.0).abs() < 1e-12);
        // A scaled copy still has cosine 1 (angle is what matters).
        let g = [2.0, 4.0, 6.0];
        assert!((cosine_similarity(&f, &g) - 1.0).abs() < 1e-12);
        // Orthogonal vectors score 0.
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_zero_vector_conventions() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn energy_similarity_is_symmetric_ratio() {
        let f = [2.0, 0.0];
        let g = [4.0, 0.0];
        // Energies 4 and 16, sqrt(4/16) = 0.5, either argument order.
        assert!((energy_similarity(&f, &g) - 0.5).abs() < 1e-12);
        assert!((energy_similarity(&g, &f) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn energy_zero_vector_conventions() {
        assert_eq!(energy_similarity(&[0.0], &[0.0]), 1.0);
        assert_eq!(energy_similarity(&[0.0], &[3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        euclidean_distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn nmse_matches_hand_computation_and_handles_zero_truth() {
        let f = [3.0, 4.0];
        let g = [3.0, 2.0];
        // SE = 4, energy = 25.
        assert!((nmse(&f, &g) - 4.0 / 25.0).abs() < 1e-12);
        assert_eq!(nmse(&f, &f), 0.0);
        // All-zero truth: normalize by length, stay finite.
        assert!((nmse(&[0.0, 0.0], &[2.0, 0.0]) - 2.0).abs() < 1e-12);
        assert_eq!(nmse(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn burst_recall_counts_threshold_crossings() {
        let f = [0.0, 10.0, 12.0, 3.0, 11.0];
        let g = [0.0, 10.0, 4.0, 9.0, 20.0];
        // Bursts at t=1,2,4 (truth ≥ 10); detected at t=1,4.
        assert!((burst_recall(&f, &g, 10.0) - 2.0 / 3.0).abs() < 1e-12);
        // No bursts in the truth: vacuously perfect.
        assert_eq!(burst_recall(&[1.0, 2.0], &[0.0, 0.0], 10.0), 1.0);
        // Perfect detector.
        assert_eq!(burst_recall(&f, &f, 10.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn burst_recall_rejects_zero_threshold() {
        burst_recall(&[1.0], &[1.0], 0.0);
    }

    #[test]
    fn heavy_hitter_f1_compares_top_k_sets() {
        let truth = [(1, 100.0), (2, 90.0), (3, 10.0), (4, 5.0)];
        // Estimate swaps #3 for #4 in the top 3.
        let est = [(1, 95.0), (2, 80.0), (4, 20.0), (3, 1.0)];
        // Top-3 sets {1,2,3} vs {1,2,4}: F1 = 2·2/6.
        assert!((heavy_hitter_f1(&truth, &est, 3) - 2.0 / 3.0).abs() < 1e-12);
        // Perfect agreement.
        assert_eq!(heavy_hitter_f1(&truth, &truth, 2), 1.0);
        // Empty lists agree by convention.
        assert_eq!(heavy_hitter_f1(&[], &[], 5), 1.0);
        // Empty truth vs non-empty estimate: no intersection.
        assert_eq!(heavy_hitter_f1(&[], &est, 2), 0.0);
    }

    #[test]
    fn heavy_hitter_f1_breaks_ties_by_key() {
        // Two keys tied at the cut: the smaller key wins deterministically.
        let truth = [(7, 50.0), (3, 50.0), (9, 50.0)];
        let a = heavy_hitter_f1(&truth, &truth, 2);
        let b = heavy_hitter_f1(&truth, &truth, 2);
        assert_eq!(a, b);
        assert_eq!(a, 1.0);
    }

    #[test]
    fn all_metrics_agree_with_individual_calls() {
        let f = [1.0, 5.0, 2.0, 0.0];
        let g = [1.5, 4.0, 2.0, 1.0];
        let m = all_metrics(&f, &g);
        assert_eq!(m.euclidean, euclidean_distance(&f, &g));
        assert_eq!(m.are, average_relative_error(&f, &g));
        assert_eq!(m.cosine, cosine_similarity(&f, &g));
        assert_eq!(m.energy, energy_similarity(&f, &g));
    }
}
