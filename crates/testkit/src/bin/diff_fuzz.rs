//! Fixed-seed differential fuzzer for CI and local debugging.
//!
//! Runs [`umon_testkit::diff_run`] for `--seeds` consecutive seeds starting
//! at `--start`, each across all three workload kinds. Prints a repro
//! command for every failure and exits nonzero if any invariant broke.
//!
//! `UMON_DIFF_BATCH=<burst>` routes the Basic/Full/HW variants through
//! `update_batch` in bursts of that size so the oracle pins the staged
//! ingest path; combine with `UMON_BATCH_KERNEL=scalar` to pin the
//! kernel fallback (ci.sh runs both configurations every time).

use std::time::Instant;

use umon_testkit::{batch_burst_from_env, diff_run, DiffConfig, DiffStats, StreamKind};

fn usage() -> ! {
    eprintln!("usage: diff_fuzz [--seeds N] [--start S]");
    std::process::exit(2);
}

fn main() {
    let mut seeds = 32u64;
    let mut start = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a numeric argument");
                usage()
            })
        };
        match arg.as_str() {
            "--seeds" => seeds = value("--seeds"),
            "--start" => start = value("--start"),
            _ => usage(),
        }
    }

    match batch_burst_from_env() {
        Some(burst) => println!(
            "diff_fuzz: batch ingest path, burst {burst}, kernel {}",
            wavesketch::active_kernel().name()
        ),
        None => println!("diff_fuzz: scalar (per-record) ingest path"),
    }

    let t0 = Instant::now();
    let mut runs = 0u64;
    let mut failures = 0u64;
    let mut totals = DiffStats::default();
    for seed in start..start.saturating_add(seeds) {
        for kind in StreamKind::ALL {
            match diff_run(seed, &DiffConfig::quick(kind)) {
                Ok(stats) => {
                    totals.updates += stats.updates;
                    totals.light_epochs += stats.light_epochs;
                    totals.flow_epochs += stats.flow_epochs;
                    totals.queries += stats.queries;
                    totals.drains_compared += stats.drains_compared;
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("FAIL: {e}");
                    eprintln!(
                        "  repro: cargo run -p umon-testkit --bin diff_fuzz -- --seeds 1 --start {seed}"
                    );
                }
            }
            runs += 1;
        }
    }
    println!(
        "diff_fuzz: {runs} runs ({seeds} seeds x {} workloads), {failures} failures in {:.2?}",
        StreamKind::ALL.len(),
        t0.elapsed()
    );
    println!(
        "  coverage: {} updates, {} light epochs, {} flow epochs, {} queries, {} drain comparisons",
        totals.updates,
        totals.light_epochs,
        totals.flow_epochs,
        totals.queries,
        totals.drains_compared
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
