//! Fixed-seed collection-plane fault-injection smoke for CI and local
//! debugging.
//!
//! Runs [`umon_testkit::collection_diff_run`] for `--seeds` consecutive
//! seeds starting at `--start`, each across all three workload kinds and
//! three transport scenarios (zero-loss faults, unrecovered loss, hostile
//! mix healed by retransmission). Prints a repro command for every failure
//! and exits nonzero if the collector's degradation contract broke.

use std::time::Instant;

use umon_testkit::{collection_diff_run, CollectionDiffConfig, CollectionDiffStats, StreamKind};

fn usage() -> ! {
    eprintln!("usage: collector_smoke [--seeds N] [--start S]");
    std::process::exit(2);
}

fn main() {
    let mut seeds = 16u64;
    let mut start = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a numeric argument");
                usage()
            })
        };
        match arg.as_str() {
            "--seeds" => seeds = value("--seeds"),
            "--start" => start = value("--start"),
            _ => usage(),
        }
    }

    let t0 = Instant::now();
    let mut runs = 0u64;
    let mut failures = 0u64;
    let mut totals = CollectionDiffStats::default();
    for seed in start..start.saturating_add(seeds) {
        for kind in StreamKind::ALL {
            match collection_diff_run(seed, &CollectionDiffConfig::quick(kind)) {
                Ok(stats) => {
                    totals.reports += stats.reports;
                    totals.duplicates += stats.duplicates;
                    totals.dropped += stats.dropped;
                    totals.gaps += stats.gaps;
                    totals.retransmissions += stats.retransmissions;
                    totals.curves_compared += stats.curves_compared;
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("FAIL: {e}");
                    eprintln!(
                        "  repro: cargo run -p umon-testkit --bin collector_smoke -- --seeds 1 --start {seed}"
                    );
                }
            }
            runs += 1;
        }
    }
    println!(
        "collector_smoke: {runs} runs ({seeds} seeds x {} workloads), {failures} failures in {:.2?}",
        StreamKind::ALL.len(),
        t0.elapsed()
    );
    println!(
        "  coverage: {} reports, {} duplicates, {} dropped, {} gaps, {} retransmissions, {} curve comparisons",
        totals.reports,
        totals.duplicates,
        totals.dropped,
        totals.gaps,
        totals.retransmissions,
        totals.curves_compared
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
