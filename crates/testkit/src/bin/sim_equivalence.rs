//! Fixed-seed parallel-vs-sequential simulator equivalence smoke for CI and
//! local debugging.
//!
//! Runs [`umon_testkit::sim_equivalence_run`] for `--seeds` consecutive
//! seeds starting at `--start`: each seed simulates a mixed DCQCN/DCTCP
//! workload on the k=4 fat-tree sequentially, then re-runs it at 1/2/4
//! partitions and demands a byte-identical full trace and bit-identical
//! drained host reports (DESIGN.md §16). Prints a repro command for every
//! failure and exits nonzero on any divergence.

use std::time::Instant;

use umon_testkit::{sim_equivalence_run, SimEquivalenceConfig, SimEquivalenceStats};

fn usage() -> ! {
    eprintln!("usage: sim_equivalence [--seeds N] [--start S]");
    std::process::exit(2);
}

fn main() {
    let mut seeds = 4u64;
    let mut start = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a numeric argument");
                usage()
            })
        };
        match arg.as_str() {
            "--seeds" => seeds = value("--seeds"),
            "--start" => start = value("--start"),
            _ => usage(),
        }
    }

    let cfg = SimEquivalenceConfig::quick();
    let t0 = Instant::now();
    let mut runs = 0u64;
    let mut failures = 0u64;
    let mut totals = SimEquivalenceStats::default();
    for seed in start..start.saturating_add(seeds) {
        match sim_equivalence_run(seed, &cfg) {
            Ok(stats) => {
                totals.partition_counts += stats.partition_counts;
                totals.trace_bytes += stats.trace_bytes;
                totals.reports += stats.reports;
                totals.events += stats.events;
            }
            Err(e) => {
                failures += 1;
                eprintln!("FAIL: {e}");
                eprintln!(
                    "  repro: cargo run -p umon-testkit --bin sim_equivalence -- --seeds 1 --start {seed}"
                );
            }
        }
        runs += 1;
    }
    println!(
        "sim_equivalence: {runs} seeds x {} partition counts, {failures} failures in {:.2?}",
        cfg.partition_counts.len(),
        t0.elapsed()
    );
    println!(
        "  coverage: {} parallel runs diffed, {} trace bytes, {} host reports, {} reference events",
        totals.partition_counts, totals.trace_bytes, totals.reports, totals.events
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
