//! Fixed-seed retention and crash-recovery smoke for CI and local debugging.
//!
//! Two stages per seed:
//!
//! 1. [`umon_testkit::retention_diff_run`] across all three workload kinds —
//!    the tier/archive differential contract (compaction and recovery are
//!    bit-invisible, eviction is exact forgetting, torn tails lose exactly
//!    the torn record).
//! 2. [`umon_testkit::retention_soak_run`] — `--periods` upload periods
//!    through a small bounded policy, asserting at every checkpoint that
//!    resident state honors the budget and queries stay bit-identical to an
//!    unbounded reference over the surviving periods.
//!
//! Plus one fixed-seed [`umon_testkit::cold_soak_run`] per invocation: a
//! bounded archive-backed analyzer whose checkpoints compare the *full*
//! history (hot + compacted + archived-cold read back from disk) against an
//! unbounded reference, bit-identically.
//!
//! Prints a repro command for every failure and exits nonzero if the
//! retention contract broke.

use std::time::Instant;

use umon::RetentionPolicy;
use umon_testkit::{
    cold_soak_run, retention_diff_run, retention_soak_run, RetentionDiffConfig, RetentionDiffStats,
    StreamKind,
};

fn usage() -> ! {
    eprintln!("usage: retention_soak [--seeds N] [--start S] [--periods P]");
    std::process::exit(2);
}

fn main() {
    let mut seeds = 4u64;
    let mut start = 0u64;
    let mut periods = 1000u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a numeric argument");
                usage()
            })
        };
        match arg.as_str() {
            "--seeds" => seeds = value("--seeds"),
            "--start" => start = value("--start"),
            "--periods" => periods = value("--periods"),
            _ => usage(),
        }
    }

    let scratch = std::env::temp_dir().join(format!("umon_retention_soak_{}", std::process::id()));
    let t0 = Instant::now();
    let mut runs = 0u64;
    let mut failures = 0u64;
    let mut totals = RetentionDiffStats::default();
    let mut soak_periods = 0u64;
    let mut soak_checks = 0usize;
    for seed in start..start.saturating_add(seeds) {
        for kind in StreamKind::ALL {
            match retention_diff_run(seed, &RetentionDiffConfig::quick(kind), &scratch) {
                Ok(stats) => {
                    totals.reports += stats.reports;
                    totals.compacted += stats.compacted;
                    totals.evicted += stats.evicted;
                    totals.recovered += stats.recovered;
                    totals.cold_reads += stats.cold_reads;
                    totals.backfilled += stats.backfilled;
                    totals.curves_compared += stats.curves_compared;
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("FAIL: {e}");
                    eprintln!(
                        "  repro: cargo run -p umon-testkit --bin retention_soak -- --seeds 1 --start {seed}"
                    );
                }
            }
            runs += 1;
        }
        let policy = RetentionPolicy::bounded(8, 32).with_cached_bytes(256 * 1024);
        match retention_soak_run(seed, periods, policy, 50) {
            Ok(stats) => {
                soak_periods += stats.periods;
                soak_checks += stats.curves_compared;
            }
            Err(e) => {
                failures += 1;
                eprintln!("FAIL: {e}");
                eprintln!(
                    "  repro: cargo run -p umon-testkit --bin retention_soak -- --seeds 1 --start {seed} --periods {periods}"
                );
            }
        }
        runs += 1;
    }
    // One fixed-seed cold soak per invocation: the checkpoints query the
    // full archived history, so its cost grows with --periods; a quarter of
    // the hot soak's length keeps the wall clock comparable.
    let cold_periods = (periods / 4).clamp(50, 250);
    let cold_policy = RetentionPolicy::bounded(8, 32).with_cold_cache_bytes(256 * 1024);
    match cold_soak_run(start, cold_periods, cold_policy, 50, &scratch) {
        Ok(stats) => {
            soak_periods += stats.periods;
            soak_checks += stats.curves_compared;
        }
        Err(e) => {
            failures += 1;
            eprintln!("FAIL: {e}");
            eprintln!(
                "  repro: cargo run -p umon-testkit --bin retention_soak -- --seeds 1 --start {start} --periods {periods}"
            );
        }
    }
    runs += 1;
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "retention_soak: {runs} runs ({seeds} seeds x {} workloads + soak), {failures} failures in {:.2?}",
        StreamKind::ALL.len(),
        t0.elapsed()
    );
    println!(
        "  coverage: {} reports, {} compacted, {} evicted, {} recovered, {} cold reads, {} backfilled, {} curve comparisons; soak {} periods, {} checkpoint comparisons",
        totals.reports,
        totals.compacted,
        totals.evicted,
        totals.recovered,
        totals.cold_reads,
        totals.backfilled,
        totals.curves_compared,
        soak_periods,
        soak_checks
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
