//! Regenerates the golden drain fixtures under `tests/golden/`.
//!
//! Usage: `cargo run -p umon-testkit --bin golden_gen [-- --check]`
//!
//! Without flags, writes one JSON [`SketchReport`] per golden seed. With
//! `--check`, compares the current implementation's drains against the
//! checked-in fixtures instead of overwriting them and exits nonzero on any
//! mismatch — the same assertion the layout-equivalence test suite makes,
//! usable standalone.
//!
//! The checked-in fixtures were produced by the pre-arena implementation;
//! they must never be regenerated from code whose drains are not already
//! known to be bit-identical to it.

use std::path::PathBuf;
use umon_testkit::golden::{golden_drain, golden_fixture_name, GOLDEN_SEEDS};
use wavesketch::SketchReport;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("tests/golden")
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let dir = fixture_dir();
    if !check {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    let mut failures = 0;
    for seed in GOLDEN_SEEDS {
        let report = golden_drain(seed);
        let path = dir.join(golden_fixture_name(seed));
        if check {
            let raw = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
            let fixture: SketchReport = serde_json::from_str(&raw).expect("parse fixture");
            if fixture == report {
                println!("seed {seed:2}: OK ({} epochs)", report.epoch_count());
            } else {
                println!("seed {seed:2}: MISMATCH vs {}", path.display());
                failures += 1;
            }
        } else {
            let json = serde_json::to_string(&report).expect("serialize report");
            std::fs::write(&path, json).expect("write fixture");
            println!(
                "seed {seed:2}: wrote {} ({} epochs, integrity {:016x})",
                path.display(),
                report.epoch_count(),
                report.integrity()
            );
        }
    }
    if failures > 0 {
        eprintln!("{failures} fixture(s) diverged");
        std::process::exit(1);
    }
}
