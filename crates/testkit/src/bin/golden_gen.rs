//! Regenerates the golden fixtures under `tests/golden/`: sketch *drain*
//! fixtures (write path) and analyzer *query* fixtures (read path).
//!
//! Usage: `cargo run -p umon-testkit --bin golden_gen [-- --check]`
//!
//! Without flags, writes one JSON [`SketchReport`] per golden drain seed and
//! one JSON [`QueryFixture`] per golden query seed. With `--check`, compares
//! the current implementation's outputs against the checked-in fixtures
//! instead of overwriting them and exits nonzero on any mismatch — the same
//! assertions the layout-equivalence and query-equivalence test suites make,
//! usable standalone.
//!
//! The checked-in drain fixtures were produced by the pre-arena
//! implementation; the query fixtures by the pre-index, pre-sparse-kernel
//! analyzer. Neither must ever be regenerated from code whose outputs are
//! not already known to be bit-identical to those implementations.

use std::path::PathBuf;
use umon_testkit::golden::{golden_drain, golden_fixture_name, GOLDEN_SEEDS};
use umon_testkit::golden_query::{query_fixture, query_fixture_name, QueryFixture, QUERY_SEEDS};
use wavesketch::SketchReport;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("tests/golden")
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let dir = fixture_dir();
    if !check {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    let mut failures = 0;
    for seed in GOLDEN_SEEDS {
        let report = golden_drain(seed);
        let path = dir.join(golden_fixture_name(seed));
        if check {
            let raw = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
            let fixture: SketchReport = serde_json::from_str(&raw).expect("parse fixture");
            if fixture == report {
                println!("drain seed {seed:2}: OK ({} epochs)", report.epoch_count());
            } else {
                println!("drain seed {seed:2}: MISMATCH vs {}", path.display());
                failures += 1;
            }
        } else {
            let json = serde_json::to_string(&report).expect("serialize report");
            std::fs::write(&path, json).expect("write fixture");
            println!(
                "drain seed {seed:2}: wrote {} ({} epochs, integrity {:016x})",
                path.display(),
                report.epoch_count(),
                report.integrity()
            );
        }
    }
    for seed in QUERY_SEEDS {
        let fixture = query_fixture(seed);
        let path = dir.join(query_fixture_name(seed));
        let curves: usize = fixture
            .hosts
            .iter()
            .map(|h| h.rate.iter().count() + h.flows.iter().filter(|(_, c)| c.is_some()).count())
            .sum();
        if check {
            let raw = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
            let frozen: QueryFixture = serde_json::from_str(&raw).expect("parse query fixture");
            if frozen == fixture {
                println!("query seed {seed:2}: OK ({curves} curves)");
            } else {
                println!("query seed {seed:2}: MISMATCH vs {}", path.display());
                failures += 1;
            }
        } else {
            let json = serde_json::to_string(&fixture).expect("serialize query fixture");
            std::fs::write(&path, json).expect("write fixture");
            println!(
                "query seed {seed:2}: wrote {} ({curves} curves)",
                path.display()
            );
        }
    }
    if failures > 0 {
        eprintln!("{failures} fixture(s) diverged");
        std::process::exit(1);
    }
}
