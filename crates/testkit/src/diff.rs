//! The differential fuzzer step: one seed → one generated stream → every
//! WaveSketch variant driven over it → every cross-variant and vs-oracle
//! invariant asserted.
//!
//! Invariants checked per run (see DESIGN.md §8 for the rationale):
//!
//! 1. **Streaming ≡ oracle**: a dedicated per-flow [`WaveBucket`] drains
//!    exactly the oracle's epochs — `w0`, padded length, block sums, every
//!    retained coefficient exact, reconstruction error equal to the unique
//!    optimal k-term error (ideal selector).
//! 2. **Exact-k reconstruction**: with `k ≥` the coefficient count the
//!    reconstruction equals the dense truth everywhere — in particular,
//!    zero-traffic windows inside an epoch reconstruct to zero.
//! 3. **Basic ≡ oracle**: a full light-part drain covers exactly the touched
//!    cells and every cell's epochs match the oracle's merged per-cell truth
//!    (collisions included).
//! 4. **Count-Min lower bound**: a Basic query never underestimates a
//!    recorded flow's total.
//! 5. **Full light ≡ Basic**: the Full sketch's light part counts every
//!    packet, so its drained light half is bit-identical to a Basic sketch
//!    fed the same stream. The heavy part is replayed exactly too: the
//!    majority vote is deterministic, so the harness recomputes every slot's
//!    incumbent, vote and post-election volume and holds `heavy_flows()`,
//!    the drained heavy totals and heavy-query totals to them. (A plain
//!    `query ≥ truth` bound is *not* asserted for heavy flows: their light
//!    path subtracts other heavy flows' lossy reconstructions, which can
//!    legitimately overshoot — the sound bound is the post-election volume.)
//! 6. **Sharded ≡ Full**: for every shard count, queries and the merged
//!    drain are bit-identical to the sequential Full sketch.
//! 7. **HW selector bound**: with the threshold selector, reports stay
//!    structurally exact (approx, coefficient values) and the reconstruction
//!    error lands in `[optimal, keep-nothing]`.
//! 8. **Within-window permutation invariance**: shuffling packets inside a
//!    window leaves Basic drains, Full light drains and per-flow bucket
//!    drains bit-identical (heavy election is order-dependent and exempt).
//! 9. **Value scaling**: scaling every count by `c` scales every coefficient
//!    of an ideal-selector Full drain by exactly `c` (selection and election
//!    are scale-invariant).

use std::collections::{BTreeMap, BTreeSet};

use wavesketch::reconstruct::reconstruct;
use wavesketch::sharded::ShardedWaveSketch;
use wavesketch::{
    BasicWaveSketch, BucketReport, FlowKey, FullWaveSketch, SelectorKind, SketchConfig,
    SketchReport, WaveBucket,
};

use crate::oracle::{CheckParams, Oracle};
use crate::stream::{gen_stream, scale_values, shuffle_within_windows, StreamConfig, StreamKind};

/// Everything one differential run needs.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Sketch layout shared by every variant (ideal selector).
    pub sketch: SketchConfig,
    /// Stream shape.
    pub stream: StreamConfig,
    /// HW-selector retain threshold for even loop levels.
    pub hw_even: u64,
    /// HW-selector retain threshold for odd loop levels.
    pub hw_odd: u64,
    /// Shard counts to drive (each must divide the config's lanes).
    pub shard_counts: Vec<usize>,
    /// How many flows to spot-check with queries.
    pub query_sample: usize,
    /// Factor for the value-scaling metamorphic check.
    pub scale_factor: i64,
    /// When `Some(n)`, the Basic/Full/HW variants ingest through
    /// `update_batch` in bursts of `n` records instead of per-record
    /// `update`, so every oracle and cross-variant invariant in this file
    /// pins the staged SIMD path too. `None` keeps the scalar loop.
    pub batch_burst: Option<usize>,
}

/// Reads the `UMON_DIFF_BATCH` burst-size toggle ci.sh uses to force the
/// batch ingest path through the fuzzer (0 or unset → scalar loop). The
/// kernel the staged path then picks is controlled independently by
/// `UMON_BATCH_KERNEL` in `wavesketch::batch`, so CI sweeps both the SIMD
/// kernel and its scalar fallback through the same invariants.
pub fn batch_burst_from_env() -> Option<usize> {
    std::env::var("UMON_DIFF_BATCH")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

impl DiffConfig {
    /// A small configuration sized for debug-build test suites: multi-epoch
    /// streams (windows > max_windows), odd top-k (exercises the HW parity
    /// split), nonzero start window, collisions likely (40 flows over
    /// 32-wide rows).
    pub fn quick(kind: StreamKind) -> Self {
        Self {
            sketch: SketchConfig::builder()
                .rows(3)
                .width(32)
                .levels(5)
                .topk(17)
                .max_windows(256)
                .heavy_rows(16)
                .selector(SelectorKind::Ideal)
                .build(),
            stream: StreamConfig {
                kind,
                flows: 40,
                windows: 300,
                start_window: 1000,
                mean_packets: 3,
            },
            hw_even: 3,
            hw_odd: 3,
            shard_counts: vec![2, 4],
            query_sample: 16,
            scale_factor: 3,
            batch_burst: batch_burst_from_env(),
        }
    }
}

/// Drives a Full sketch over the stream through whichever ingest path the
/// config selects. Burst sizes are taken as-is (ci.sh picks one that is not
/// a multiple of the staging CHUNK so remainder handling stays covered).
fn drive_full(sketch: &mut FullWaveSketch, stream: &[(FlowKey, u64, i64)], cfg: &DiffConfig) {
    match cfg.batch_burst {
        Some(burst) => {
            for chunk in stream.chunks(burst) {
                sketch.update_batch(chunk);
            }
        }
        None => {
            for (f, w, v) in stream {
                sketch.update(f, *w, *v);
            }
        }
    }
}

/// [`drive_full`] for the Basic (light-only) sketch.
fn drive_basic(sketch: &mut BasicWaveSketch, stream: &[(FlowKey, u64, i64)], cfg: &DiffConfig) {
    match cfg.batch_burst {
        Some(burst) => {
            for chunk in stream.chunks(burst) {
                sketch.update_batch(chunk);
            }
        }
        None => {
            for (f, w, v) in stream {
                sketch.update(f, *w, *v);
            }
        }
    }
}

/// What a successful run covered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffStats {
    /// Updates in the generated stream.
    pub updates: usize,
    /// Distinct flows observed.
    pub flows: usize,
    /// Light-cell epoch reports validated against the oracle.
    pub light_epochs: usize,
    /// Per-flow (streaming) epoch reports validated against the oracle.
    pub flow_epochs: usize,
    /// Flow queries spot-checked.
    pub queries: usize,
    /// Whole-drain bit-identity comparisons performed.
    pub drains_compared: usize,
}

/// A differential failure: the seed and workload that reproduce it plus a
/// description of the first violated invariant.
#[derive(Debug)]
pub struct DiffError {
    /// Seed that reproduces the failure.
    pub seed: u64,
    /// Workload kind the stream was generated with.
    pub kind: StreamKind,
    /// Which invariant broke, and how.
    pub detail: String,
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "diff_run failed (seed {}, workload {}): {}",
            self.seed,
            self.kind.name(),
            self.detail
        )
    }
}

impl std::error::Error for DiffError {}

/// Scales every coefficient of a drained report by `factor` — the expected
/// drain of a value-scaled stream under the ideal selector.
pub fn scale_report(report: &SketchReport, factor: i64) -> SketchReport {
    let scale_buckets = |reports: &[BucketReport]| -> Vec<BucketReport> {
        reports
            .iter()
            .map(|r| {
                let mut s = r.clone();
                for a in &mut s.approx {
                    *a *= factor;
                }
                for d in &mut s.details {
                    d.val *= factor;
                }
                s
            })
            .collect()
    };
    SketchReport {
        heavy: report
            .heavy
            .iter()
            .map(|(k, rs)| (k.clone(), scale_buckets(rs)))
            .collect(),
        light: report
            .light
            .iter()
            .map(|&(row, col, ref rs)| (row, col, scale_buckets(rs)))
            .collect(),
    }
}

/// Runs the full differential step for one seed. Returns coverage counters
/// on success and the first violated invariant otherwise.
pub fn diff_run(seed: u64, cfg: &DiffConfig) -> Result<DiffStats, DiffError> {
    let fail = |detail: String| DiffError {
        seed,
        kind: cfg.stream.kind,
        detail,
    };
    let stream = gen_stream(seed, &cfg.stream);
    let mut stats = DiffStats {
        updates: stream.len(),
        ..DiffStats::default()
    };
    if stream.is_empty() {
        return Ok(stats);
    }

    let mut oracle = Oracle::new(cfg.sketch.clone());
    for (f, w, v) in &stream {
        oracle.record(f, *w, *v);
    }
    let flows = oracle.flows();
    stats.flows = flows.len();
    let params = CheckParams::from_config(&cfg.sketch);
    let sample: Vec<FlowKey> = flows
        .iter()
        .copied()
        .step_by((flows.len() / cfg.query_sample.max(1)).max(1))
        .take(cfg.query_sample)
        .collect();

    // 1 + 2: Streaming variant — one dedicated bucket per flow, plus an
    // exact-k twin whose reconstruction must equal the dense truth.
    let exact_k = cfg.sketch.max_windows;
    let mut per_flow: BTreeMap<FlowKey, WaveBucket> = BTreeMap::new();
    let mut exact: BTreeMap<FlowKey, WaveBucket> = BTreeMap::new();
    for (f, w, v) in &stream {
        per_flow
            .entry(*f)
            .or_insert_with(|| WaveBucket::new(&cfg.sketch))
            .update(*w, *v);
        exact
            .entry(*f)
            .or_insert_with(|| {
                WaveBucket::with_params(
                    cfg.sketch.levels,
                    cfg.sketch.max_windows,
                    exact_k,
                    SelectorKind::Ideal,
                )
            })
            .update(*w, *v);
    }
    let mut flow_reports: BTreeMap<FlowKey, Vec<BucketReport>> = BTreeMap::new();
    for (flow, bucket) in &mut per_flow {
        let reports = bucket.drain();
        oracle
            .check_flow_reports(flow, &reports, &params)
            .map_err(|e| fail(format!("streaming variant: {e}")))?;
        stats.flow_epochs += reports.len();
        flow_reports.insert(*flow, reports);
    }
    for (flow, bucket) in &mut exact {
        let truths = oracle.flow_epochs(flow);
        let reports = bucket.drain();
        for (truth, report) in truths.iter().zip(&reports) {
            let rec = reconstruct(&report.coeffs());
            for (i, &r) in rec.iter().enumerate() {
                let want = truth.counts.get(i).copied().unwrap_or(0) as f64;
                if (r - want).abs() > 1e-6 {
                    return Err(fail(format!(
                        "exact-k reconstruction of flow {flow:?} window {} is {r}, truth {want}",
                        truth.w0 + i as u64
                    )));
                }
            }
        }
    }

    // 3 + 4: Basic sketch vs the per-cell oracle, plus query lower bounds.
    let mut basic = BasicWaveSketch::new(cfg.sketch.clone());
    drive_basic(&mut basic, &stream, cfg);
    for flow in &sample {
        let truth_total = oracle.flow_total(flow) as f64;
        let est = basic
            .query(flow)
            .map(|s| s.total())
            .ok_or_else(|| fail(format!("basic query lost recorded flow {flow:?}")))?;
        if est < truth_total - 1e-6 * (1.0 + truth_total) {
            return Err(fail(format!(
                "basic query underestimates flow {flow:?}: {est} < {truth_total}"
            )));
        }
        stats.queries += 1;
    }
    let basic_drain = basic.drain();
    stats.light_epochs += oracle
        .check_light_drain(&basic_drain, &params)
        .map_err(|e| fail(format!("basic variant: {e}")))?;

    // 5 + 6: Full sketch and its sharded twins. The heavy part's majority
    // vote is value-independent and deterministic, so replay it exactly:
    // per slot, the incumbent key, its vote and its post-election volume.
    let mut slots: Vec<(Option<FlowKey>, i64, i64)> = vec![(None, 0, 0); cfg.sketch.heavy_rows];
    for (f, _, v) in &stream {
        let slot = &mut slots[cfg.sketch.heavy_slot(f)];
        match slot.0 {
            None => *slot = (Some(*f), 1, *v),
            Some(k) if k == *f => {
                slot.1 += 1;
                slot.2 += *v;
            }
            Some(_) => {
                slot.1 -= 1;
                if slot.1 <= 0 {
                    *slot = (Some(*f), 1, *v);
                }
            }
        }
    }
    let mut full = FullWaveSketch::new(cfg.sketch.clone());
    drive_full(&mut full, &stream, cfg);
    let expected_heavy: Vec<(FlowKey, i64)> = slots
        .iter()
        .filter_map(|&(k, vote, _)| k.map(|k| (k, vote)))
        .collect();
    if full.heavy_flows() != expected_heavy {
        return Err(fail(
            "heavy candidates/votes differ from the exact majority-vote replay".into(),
        ));
    }
    let mut sharded: Vec<ShardedWaveSketch> = cfg
        .shard_counts
        .iter()
        .map(|&n| {
            let mut s = ShardedWaveSketch::new(cfg.sketch.clone(), n);
            s.update_batch(&stream);
            s
        })
        .collect();
    for flow in &sample {
        let seq = full.query(flow);
        for s in &sharded {
            if s.query(flow) != seq {
                return Err(fail(format!(
                    "sharded query ({} shards) differs from sequential for flow {flow:?}",
                    s.shard_count()
                )));
            }
        }
        if full.is_heavy(flow) {
            // The query overlays the exact heavy bucket onto the light
            // curve, so its total can never drop below the flow's exact
            // post-election volume (the truth total itself is not a sound
            // bound here — see the module docs).
            let post_election = slots[cfg.sketch.heavy_slot(flow)].2 as f64;
            let est = seq.as_ref().map(|s| s.total()).unwrap_or(0.0);
            if est < post_election - 1e-6 * (1.0 + post_election) {
                return Err(fail(format!(
                    "full query of heavy flow {flow:?} is {est}, below its exact \
                     post-election volume {post_election}"
                )));
            }
            // The public volume query is clamped from below by the exact
            // post-election volume, so it can never fall under it — and the
            // sketch's own bound must agree with the replayed one.
            let volume = full.query_volume(flow).unwrap_or(0.0);
            let own_bound = full.post_election_volume(flow).unwrap_or(0);
            if own_bound as f64 != post_election {
                return Err(fail(format!(
                    "post_election_volume of heavy flow {flow:?} is {own_bound}, \
                     replay says {post_election}"
                )));
            }
            if volume < post_election || volume < est {
                return Err(fail(format!(
                    "query_volume of heavy flow {flow:?} is {volume}, below \
                     max(curve total {est}, post-election volume {post_election})"
                )));
            }
        }
        stats.queries += 1;
    }
    let full_report = full.drain();
    if full_report.light != basic_drain {
        return Err(fail(
            "full sketch's light drain differs from the basic sketch's".into(),
        ));
    }
    stats.drains_compared += 1;
    let known: BTreeSet<Vec<u8>> = flows.iter().map(|f| f.pack().to_vec()).collect();
    let drained_heavy: Vec<(Vec<u8>, i64)> = full_report
        .heavy
        .iter()
        .map(|(key, reports)| (key.clone(), reports.iter().map(BucketReport::total).sum()))
        .collect();
    let expected_drained: Vec<(Vec<u8>, i64)> = slots
        .iter()
        .filter_map(|&(k, _, total)| k.map(|k| (k.pack().to_vec(), total)))
        .collect();
    if drained_heavy != expected_drained {
        return Err(fail(
            "drained heavy keys/totals differ from the exact majority-vote replay".into(),
        ));
    }
    for (key, reports) in &full_report.heavy {
        if !known.contains(key) {
            return Err(fail(format!("heavy entry for unseen flow key {key:?}")));
        }
        if reports.is_empty() {
            return Err(fail(format!("empty heavy entry for key {key:?}")));
        }
    }
    for s in &mut sharded {
        let n = s.shard_count();
        if s.drain() != full_report {
            return Err(fail(format!(
                "sharded drain ({n} shards) is not bit-identical to the sequential full drain"
            )));
        }
        stats.drains_compared += 1;
    }

    // 7: HW threshold selector — structural exactness + the error corridor,
    // and shard-merge identity under the approximate selector too.
    let hw_cfg = SketchConfig {
        selector: SelectorKind::HwThreshold {
            even: cfg.hw_even,
            odd: cfg.hw_odd,
        },
        ..cfg.sketch.clone()
    };
    let hw_params = CheckParams::from_config(&hw_cfg);
    let mut hw = FullWaveSketch::new(hw_cfg.clone());
    drive_full(&mut hw, &stream, cfg);
    let hw_report = hw.drain();
    stats.light_epochs += oracle
        .check_light_drain(&hw_report.light, &hw_params)
        .map_err(|e| fail(format!("hw variant: {e}")))?;
    if let Some(&n) = cfg.shard_counts.first() {
        let mut hw_sharded = ShardedWaveSketch::new(hw_cfg.clone(), n);
        hw_sharded.update_batch(&stream);
        if hw_sharded.drain() != hw_report {
            return Err(fail(format!(
                "sharded HW drain ({n} shards) differs from the sequential HW drain"
            )));
        }
        stats.drains_compared += 1;
    }

    // 8: within-window permutation invariance.
    let shuffled = shuffle_within_windows(&stream, seed ^ 0xA5A5_5A5A_F00D_BEEF);
    let mut basic_p = BasicWaveSketch::new(cfg.sketch.clone());
    let mut full_p = FullWaveSketch::new(cfg.sketch.clone());
    drive_basic(&mut basic_p, &shuffled, cfg);
    drive_full(&mut full_p, &shuffled, cfg);
    let mut per_flow_p: BTreeMap<FlowKey, WaveBucket> = BTreeMap::new();
    for (f, w, v) in &shuffled {
        per_flow_p
            .entry(*f)
            .or_insert_with(|| WaveBucket::new(&cfg.sketch))
            .update(*w, *v);
    }
    if basic_p.drain() != basic_drain {
        return Err(fail(
            "basic drain changed under within-window permutation".into(),
        ));
    }
    if full_p.drain().light != full_report.light {
        return Err(fail(
            "full light drain changed under within-window permutation".into(),
        ));
    }
    for (flow, bucket) in &mut per_flow_p {
        if bucket.drain() != flow_reports[flow] {
            return Err(fail(format!(
                "per-flow drain of {flow:?} changed under within-window permutation"
            )));
        }
    }
    stats.drains_compared += 2;

    // 9: value scaling.
    let scaled = scale_values(&stream, cfg.scale_factor);
    let mut full_s = FullWaveSketch::new(cfg.sketch.clone());
    drive_full(&mut full_s, &scaled, cfg);
    if full_s.drain() != scale_report(&full_report, cfg.scale_factor) {
        return Err(fail(format!(
            "scaling values by {} did not scale the full drain's coefficients by {}",
            cfg.scale_factor, cfg.scale_factor
        )));
    }
    stats.drains_compared += 1;

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_valid_and_multi_epoch() {
        for kind in StreamKind::ALL {
            let cfg = DiffConfig::quick(kind);
            assert!(cfg.stream.windows > cfg.sketch.max_windows as u64);
            assert!(
                cfg.sketch.topk % 2 == 1,
                "odd k exercises the HW parity split"
            );
            for &n in &cfg.shard_counts {
                assert!(cfg.sketch.lanes.is_multiple_of(n));
            }
        }
    }

    #[test]
    fn one_smoke_seed_per_workload() {
        for kind in StreamKind::ALL {
            let stats = diff_run(0xD1FF, &DiffConfig::quick(kind)).unwrap();
            assert!(stats.updates > 0);
            assert!(stats.light_epochs > 0);
            assert!(stats.flow_epochs > 0);
            assert!(stats.drains_compared >= 6);
        }
    }

    #[test]
    fn heavy_volume_query_is_clamped_to_the_post_election_bound() {
        // Minimized from the first failing fuzz seed (0, bursty): a heavy
        // flow's *curve* query subtracts other heavy flows' lossy
        // reconstructions from its pre-election light history, so its total
        // can undershoot the all-time truth — that mechanism is inherent to
        // the sketch and still reproduces below. The public volume query is
        // therefore clamped from below by the exact post-election volume:
        // the sound bound the sketch can actually promise.
        let cfg = DiffConfig::quick(StreamKind::Bursty);
        let stream = gen_stream(0, &cfg.stream);
        let mut oracle = Oracle::new(cfg.sketch.clone());
        let mut full = FullWaveSketch::new(cfg.sketch.clone());
        for (f, w, v) in &stream {
            oracle.record(f, *w, *v);
            full.update(f, *w, *v);
        }
        let undershoot = oracle.flows().iter().any(|f| {
            full.is_heavy(f)
                && full.query(f).map(|s| s.total()).unwrap_or(0.0)
                    < oracle.flow_total(f) as f64 - 1e-6
        });
        assert!(
            undershoot,
            "seed 0 / bursty no longer reproduces the undershoot; refresh this regression"
        );
        // The fix: for every heavy flow, the volume query never falls below
        // the exact post-election volume nor below the curve total.
        for f in oracle.flows() {
            if !full.is_heavy(&f) {
                continue;
            }
            let volume = full.query_volume(&f).expect("heavy flow answers");
            let bound = full
                .post_election_volume(&f)
                .expect("heavy flow has a slot") as f64;
            let curve_total = full.query(&f).map(|s| s.total()).unwrap_or(0.0);
            assert!(
                volume >= bound && volume >= curve_total,
                "flow {f:?}: query_volume {volume} below max({curve_total}, {bound})"
            );
        }
        diff_run(0, &cfg).unwrap();
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = DiffConfig::quick(StreamKind::Skewed);
        assert_eq!(diff_run(42, &cfg).unwrap(), diff_run(42, &cfg).unwrap());
    }

    #[test]
    fn batch_ingest_survives_the_full_differential() {
        // Belt-and-braces alongside the ci.sh env toggle: pin the staged
        // batch path against every invariant in this file even when the
        // suite runs without UMON_DIFF_BATCH set. Burst 257 is deliberately
        // not a multiple of the staging CHUNK (256) so remainder handling
        // stays covered, and the batch run must produce coverage counters
        // identical to the scalar run's — same streams, same epochs, same
        // drains.
        for kind in StreamKind::ALL {
            let mut cfg = DiffConfig::quick(kind);
            cfg.batch_burst = None;
            let scalar = diff_run(0xBA7C, &cfg).unwrap();
            cfg.batch_burst = Some(257);
            let batched = diff_run(0xBA7C, &cfg).unwrap();
            assert_eq!(scalar, batched);
            assert!(batched.drains_compared >= 6);
        }
    }
}
