//! Golden drain fixtures: frozen [`FullWaveSketch`] drains from fixed seeds,
//! checked into `tests/golden/` as JSON.
//!
//! The fixtures pin the *exact* byte-level drain output — including the
//! retained-detail emission order, which for the ideal selector is the
//! internal layout of a binary max-heap — across memory-layout refactors of
//! the sketch hot path. They were generated from the pre-arena (`Vec`-of-
//! `WaveBucket`) implementation via the `golden_gen` binary; the
//! layout-equivalence suite in `tests/differential.rs` replays the same
//! seeded workloads on the current implementation and asserts
//! [`SketchReport`] equality field by field.
//!
//! The eight seeds sweep both selector kinds (ideal top-k and the hardware
//! threshold split, with an odd `k` so the uneven parity split is covered)
//! and all three workload shapes, with more windows than `max_windows` so
//! every fixture contains mid-stream epoch rollovers.

use crate::stream::{gen_stream, StreamConfig, StreamKind, Update};
use wavesketch::{FullWaveSketch, SelectorKind, SketchConfig, SketchReport};

/// The fixed seeds the fixture set covers.
pub const GOLDEN_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Repo-relative fixture file name for `seed`.
pub fn golden_fixture_name(seed: u64) -> String {
    format!("full_drain_seed{seed:02}.json")
}

/// The deterministic `(sketch config, update stream)` pair for `seed`.
///
/// Selector kind alternates by seed parity; the workload shape cycles
/// through all three [`StreamKind`]s. 300 windows against `max_windows =
/// 256` forces an epoch rollover inside every active bucket, and `topk = 17`
/// (odd) exercises the hardware selector's uneven parity split.
pub fn golden_case(seed: u64) -> (SketchConfig, Vec<Update>) {
    let kind = match seed % 3 {
        0 => StreamKind::Uniform,
        1 => StreamKind::Skewed,
        _ => StreamKind::Bursty,
    };
    let selector = if seed.is_multiple_of(2) {
        SelectorKind::HwThreshold { even: 4, odd: 4 }
    } else {
        SelectorKind::Ideal
    };
    let sketch = SketchConfig::builder()
        .rows(3)
        .width(32)
        .levels(5)
        .topk(17)
        .max_windows(256)
        .heavy_rows(16)
        .selector(selector)
        .seed(0x5EED ^ seed)
        .build();
    let stream = gen_stream(
        seed,
        &StreamConfig {
            kind,
            flows: 40,
            windows: 300,
            start_window: 1000,
            mean_packets: 4,
        },
    );
    (sketch, stream)
}

/// Runs the seed's workload through a [`FullWaveSketch`] and drains it.
pub fn golden_drain(seed: u64) -> SketchReport {
    let (cfg, stream) = golden_case(seed);
    let mut sketch = FullWaveSketch::new(cfg);
    for (flow, window, value) in &stream {
        sketch.update(flow, *window, *value);
    }
    sketch.drain()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_drains_are_deterministic_and_nonempty() {
        for seed in GOLDEN_SEEDS {
            let a = golden_drain(seed);
            let b = golden_drain(seed);
            assert_eq!(a, b, "seed {seed} drain not deterministic");
            assert!(
                !a.light.is_empty(),
                "seed {seed} produced an empty light part"
            );
            assert!(
                !a.heavy.is_empty(),
                "seed {seed} produced an empty heavy part"
            );
            // Every fixture must contain a rollover (two epochs in a bucket).
            assert!(
                a.light.iter().any(|(_, _, rs)| rs.len() > 1),
                "seed {seed} has no mid-stream rollover"
            );
        }
    }

    #[test]
    fn golden_seeds_cover_both_selectors_and_all_workloads() {
        let mut kinds = std::collections::BTreeSet::new();
        let mut selectors = std::collections::BTreeSet::new();
        for seed in GOLDEN_SEEDS {
            let (cfg, _) = golden_case(seed);
            selectors.insert(matches!(cfg.selector, SelectorKind::Ideal));
            kinds.insert(seed % 3);
        }
        assert_eq!(selectors.len(), 2, "both selector kinds must appear");
        assert_eq!(kinds.len(), 3, "all workload shapes must appear");
    }
}
