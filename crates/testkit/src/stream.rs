//! Seeded, deterministic packet-stream generation for differential testing,
//! plus the metamorphic stream transforms (within-window shuffling, value
//! scaling) whose effect on drained reports is provable.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wavesketch::FlowKey;

/// One sketch update: `(flow, absolute window, value)`.
pub type Update = (FlowKey, u64, i64);

/// The workload shapes the fuzzer covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Uniform background: every flow equally likely, small values.
    Uniform,
    /// Skewed elephants-and-mice mix (the datacenter heavy-tail shape).
    Skewed,
    /// Bursty incast: idle gaps punctuated by synchronized fan-in bursts.
    Bursty,
    /// Incast storm (the `umon_workloads::scenario` shape): strictly
    /// periodic rounds where a small fan-in set slams one window with
    /// MTU-sized packets (some jittering into the next), then silence.
    Incast,
    /// Allreduce collective: lockstep steps where *every* flow sends one
    /// equal-sized chunk in the same window, silence between steps — the
    /// worst case for per-window counter contention.
    Allreduce,
}

impl StreamKind {
    /// The original three workload kinds — the exhaustive tier-1 sweep.
    /// Deliberately unchanged when the adversarial kinds were added: every
    /// committed seed/coverage expectation downstream is pinned to this set.
    pub const ALL: [StreamKind; 3] = [StreamKind::Uniform, StreamKind::Skewed, StreamKind::Bursty];

    /// The scenario-matrix shapes (see `umon_workloads::scenario`), swept by
    /// the adversarial differential tests on top of [`StreamKind::ALL`].
    pub const ADVERSARIAL: [StreamKind; 2] = [StreamKind::Incast, StreamKind::Allreduce];

    /// Stable lower-case name (used in failure messages and CLI output).
    pub fn name(self) -> &'static str {
        match self {
            StreamKind::Uniform => "uniform",
            StreamKind::Skewed => "skewed",
            StreamKind::Bursty => "bursty",
            StreamKind::Incast => "incast",
            StreamKind::Allreduce => "allreduce",
        }
    }
}

/// Shape parameters for [`gen_stream`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Workload shape.
    pub kind: StreamKind,
    /// Number of distinct flows.
    pub flows: u64,
    /// Number of windows the stream spans.
    pub windows: u64,
    /// Absolute window id of the first window (nonzero start exercises the
    /// `w0` anchoring).
    pub start_window: u64,
    /// Mean packets per window (approximate; per-kind distributions vary).
    pub mean_packets: u32,
}

/// Generates a deterministic stream: same `(seed, cfg)` → same updates.
/// Windows are emitted in non-decreasing order, as on a real timeline; when
/// `cfg.windows` exceeds the sketch's `max_windows`, epochs roll over.
pub fn gen_stream(seed: u64, cfg: &StreamConfig) -> Vec<Update> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let flows = cfg.flows.max(1);
    let elephants = (flows / 8).max(1);
    let mut out = Vec::new();
    for w in 0..cfg.windows {
        let window = cfg.start_window + w;
        match cfg.kind {
            StreamKind::Uniform => {
                let n = rng.gen_range(0..=2 * cfg.mean_packets);
                for _ in 0..n {
                    let flow = rng.gen_range(0..flows);
                    let bytes = rng.gen_range(64..1500i64);
                    out.push((FlowKey::from_id(flow), window, bytes));
                }
            }
            StreamKind::Skewed => {
                let n = rng.gen_range(0..=2 * cfg.mean_packets);
                for _ in 0..n {
                    let (flow, bytes) = if rng.gen_bool(0.7) {
                        (rng.gen_range(0..elephants), rng.gen_range(500..9000i64))
                    } else {
                        (
                            rng.gen_range(elephants..flows.max(elephants + 1)),
                            rng.gen_range(40..300i64),
                        )
                    };
                    out.push((FlowKey::from_id(flow), window, bytes));
                }
            }
            StreamKind::Bursty => {
                if rng.gen_bool(0.12) {
                    // Synchronized fan-in: many flows land in one window.
                    let fan_in = rng.gen_range(4..=16u64).min(flows);
                    let burst = cfg.mean_packets * 6;
                    for _ in 0..burst {
                        let flow = rng.gen_range(0..fan_in);
                        out.push((FlowKey::from_id(flow), window, rng.gen_range(1000..1500i64)));
                    }
                } else if rng.gen_bool(0.5) {
                    // Idle gap: zero-traffic window inside the epoch.
                } else {
                    for _ in 0..rng.gen_range(1..=2u32) {
                        let flow = rng.gen_range(0..flows);
                        out.push((FlowKey::from_id(flow), window, rng.gen_range(64..400i64)));
                    }
                }
            }
            StreamKind::Incast => {
                // One round every 16 windows; the other 15 are dead air.
                if w % 16 == 0 {
                    let fan_in = rng.gen_range(4..=8u64).min(flows);
                    let mut spill = Vec::new();
                    for _ in 0..cfg.mean_packets * 8 {
                        let flow = rng.gen_range(0..fan_in);
                        let bytes = rng.gen_range(1000..1500i64);
                        if rng.gen_bool(0.25) && w + 1 < cfg.windows {
                            // Sender jitter: this packet lands one window late.
                            spill.push((FlowKey::from_id(flow), window + 1, bytes));
                        } else {
                            out.push((FlowKey::from_id(flow), window, bytes));
                        }
                    }
                    // Appending the spill after the on-time packets keeps the
                    // stream's non-decreasing window order (round gap > 1).
                    out.extend(spill);
                }
            }
            StreamKind::Allreduce => {
                // One collective step every 12 windows: every flow sends an
                // equal-sized chunk (small value noise keeps coefficients
                // distinct), then the fabric goes quiet in lockstep.
                if w % 12 == 0 {
                    for flow in 0..flows {
                        for _ in 0..cfg.mean_packets.max(1) {
                            out.push((FlowKey::from_id(flow), window, rng.gen_range(950..1050i64)));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Shuffles updates *within* each window, leaving the window sequence
/// untouched. Light-part counting is a per-window sum, so drains of the
/// Basic sketch, the Full sketch's light part and any dedicated per-flow
/// bucket must be bit-identical under this permutation. (The Full sketch's
/// heavy-part *election* is order-dependent by design, so it is exempt.)
pub fn shuffle_within_windows(stream: &[Update], seed: u64) -> Vec<Update> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = stream.to_vec();
    let mut start = 0;
    while start < out.len() {
        let window = out[start].1;
        let mut end = start + 1;
        while end < out.len() && out[end].1 == window {
            end += 1;
        }
        // Fisher–Yates over the window's slice.
        for i in (start + 1..end).rev() {
            let j = rng.gen_range(start..=i);
            out.swap(i, j);
        }
        start = end;
    }
    out
}

/// Scales every update value by `factor`. All Haar coefficients are linear
/// in the counts and both the exact weighted comparison and the majority
/// vote are scale-invariant, so an ideal-selector Full drain of the scaled
/// stream equals the original drain with every coefficient scaled.
pub fn scale_values(stream: &[Update], factor: i64) -> Vec<Update> {
    stream.iter().map(|&(f, w, v)| (f, w, v * factor)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: StreamKind) -> StreamConfig {
        StreamConfig {
            kind,
            flows: 24,
            windows: 120,
            start_window: 500,
            mean_packets: 3,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in StreamKind::ALL {
            let a = gen_stream(7, &cfg(kind));
            let b = gen_stream(7, &cfg(kind));
            assert_eq!(a, b, "{}", kind.name());
            assert!(!a.is_empty(), "{} stream empty", kind.name());
        }
    }

    #[test]
    fn seeds_differ() {
        let a = gen_stream(1, &cfg(StreamKind::Uniform));
        let b = gen_stream(2, &cfg(StreamKind::Uniform));
        assert_ne!(a, b);
    }

    #[test]
    fn windows_are_non_decreasing_and_anchored() {
        for kind in StreamKind::ALL {
            let s = gen_stream(3, &cfg(kind));
            for pair in s.windows(2) {
                assert!(pair[0].1 <= pair[1].1);
            }
            assert!(s.iter().all(|u| u.1 >= 500 && u.1 < 620));
        }
    }

    #[test]
    fn shuffle_preserves_window_multisets() {
        let s = gen_stream(11, &cfg(StreamKind::Skewed));
        let shuffled = shuffle_within_windows(&s, 99);
        assert_eq!(s.len(), shuffled.len());
        let key = |v: &[Update]| {
            let mut sorted: Vec<_> = v.to_vec();
            sorted.sort_by_key(|&(f, w, val)| (w, f, val));
            sorted
        };
        assert_eq!(key(&s), key(&shuffled));
        assert_ne!(s, shuffled, "shuffle should move something");
    }

    #[test]
    fn adversarial_kinds_are_deterministic_and_shaped() {
        for kind in StreamKind::ADVERSARIAL {
            let a = gen_stream(7, &cfg(kind));
            let b = gen_stream(7, &cfg(kind));
            assert_eq!(a, b, "{}", kind.name());
            assert!(!a.is_empty(), "{} stream empty", kind.name());
            for pair in a.windows(2) {
                assert!(pair[0].1 <= pair[1].1, "{} out of order", kind.name());
            }
            // Both shapes are mostly silence between synchronized slams.
            let touched: std::collections::BTreeSet<u64> = a.iter().map(|u| u.1).collect();
            assert!(touched.len() < 40, "{} lacks idle gaps", kind.name());
        }
    }

    #[test]
    fn allreduce_steps_load_every_flow_equally() {
        let s = gen_stream(3, &cfg(StreamKind::Allreduce));
        let mut per_flow: std::collections::BTreeMap<FlowKey, usize> =
            std::collections::BTreeMap::new();
        for &(f, _, _) in &s {
            *per_flow.entry(f).or_default() += 1;
        }
        assert_eq!(per_flow.len(), 24, "every flow participates");
        let counts: std::collections::BTreeSet<usize> = per_flow.values().copied().collect();
        assert_eq!(counts.len(), 1, "lockstep steps send equal packet counts");
    }

    #[test]
    fn incast_rounds_concentrate_on_a_small_fan_in() {
        let s = gen_stream(5, &cfg(StreamKind::Incast));
        let flows: std::collections::BTreeSet<FlowKey> = s.iter().map(|u| u.0).collect();
        assert!(
            flows.len() <= 8,
            "incast must hit a small sender set, got {}",
            flows.len()
        );
        assert!(
            s.iter().all(|u| u.2 >= 1000),
            "incast packets are MTU-sized"
        );
    }

    #[test]
    fn bursty_streams_have_idle_windows() {
        let s = gen_stream(5, &cfg(StreamKind::Bursty));
        let touched: std::collections::BTreeSet<u64> = s.iter().map(|u| u.1).collect();
        assert!(touched.len() < 120, "no idle gaps generated");
    }
}
