//! Parallel-vs-sequential simulator equivalence differential.
//!
//! The sharded netsim runner ([`umon_netsim::run_parallel`]) promises
//! results *bit-identical* to the sequential [`umon_netsim::Simulator`] for
//! any seed and partition count (DESIGN.md §16). This module enforces that
//! promise end to end, on the two surfaces downstream consumers actually
//! read:
//!
//! * the **full trace CSV** ([`umon_netsim::trace::write_full_trace`]) —
//!   every telemetry tap serialized in a fixed section order, diffed as raw
//!   bytes, and
//! * the **drained host reports** — each host's TX records fed through a
//!   real [`umon::HostAgent`] and the resulting [`umon::PeriodReport`]s
//!   compared field by field (every coefficient is an integer, so `==` is
//!   bit-identity).
//!
//! One seed → one sequential reference run → the same workload re-run at
//! each requested partition count; any divergence reports the seed, the
//! partition count and the first differing trace line.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use umon::{HostAgent, HostAgentConfig, PeriodReport};
use umon_netsim::trace::write_full_trace;
use umon_netsim::{
    run_parallel, CongestionControl, FlowId, FlowSpec, SimConfig, SimResult, Simulator, Topology,
};
use wavesketch::SketchConfig;

/// Shape of one equivalence run.
#[derive(Debug, Clone)]
pub struct SimEquivalenceConfig {
    /// Partition counts to compare against the sequential reference.
    pub partition_counts: Vec<usize>,
    /// Flows generated over the k=4 fat-tree.
    pub flows: usize,
    /// Simulated horizon in ns.
    pub end_ns: u64,
    /// Per-host clock error bound in ns (exercises the local-timestamp
    /// path the host agents consume).
    pub clock_error_ns: i64,
}

impl SimEquivalenceConfig {
    /// The CI smoke shape: 1/2/4 partitions on the k=4 fat-tree, enough
    /// flows and horizon that every telemetry tap has records, small enough
    /// that one seed stays under a few seconds.
    pub fn quick() -> Self {
        Self {
            partition_counts: vec![1, 2, 4],
            flows: 192,
            end_ns: 2_000_000,
            clock_error_ns: 100,
        }
    }
}

/// Coverage counters from one equivalence run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimEquivalenceStats {
    /// Partition counts compared against the sequential reference.
    pub partition_counts: usize,
    /// Size of the (identical) trace surface, in bytes.
    pub trace_bytes: usize,
    /// Host period reports compared (per run pair).
    pub reports: usize,
    /// Events the sequential reference dispatched.
    pub events: u64,
}

/// Mixed DCQCN/DCTCP traffic over the 16 hosts of the k=4 fat-tree,
/// deterministic in `seed`: random distinct (src, dst) pairs, heavy-tailed
/// sizes, arrivals over the first half of the horizon so flows finish (and
/// FCTs land in the drained stats) inside it.
fn gen_flows(seed: u64, n: usize, end_ns: u64) -> Vec<FlowSpec> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x51E9_01AD);
    (0..n)
        .map(|i| {
            let src = rng.gen_range(0..16usize);
            let dst = loop {
                let d = rng.gen_range(0..16usize);
                if d != src {
                    break d;
                }
            };
            FlowSpec {
                id: FlowId(i as u64),
                src,
                dst,
                size_bytes: if rng.gen_bool(0.2) {
                    rng.gen_range(30_000..120_000)
                } else {
                    rng.gen_range(1_000..10_000)
                },
                start_ns: rng.gen_range(0..end_ns / 2),
                cc: if rng.gen_bool(0.5) {
                    CongestionControl::Dcqcn
                } else {
                    CongestionControl::Dctcp
                },
            }
        })
        .collect()
}

/// Host-agent shape for the report comparison: small sketch, 1 ms periods
/// so a 2 ms run drains multiple reports per host.
fn agent_config() -> HostAgentConfig {
    HostAgentConfig {
        sketch: SketchConfig::builder()
            .rows(2)
            .width(64)
            .levels(5)
            .topk(16)
            .max_windows(512)
            .heavy_rows(16)
            .build(),
        period_ns: 1_000_000,
        window_shift: 13,
    }
}

fn full_trace(result: &SimResult) -> Vec<u8> {
    let mut buf = Vec::new();
    write_full_trace(&mut buf, &result.telemetry).expect("Vec<u8> writes are infallible");
    buf
}

/// Drains every host's TX records through a fresh [`HostAgent`].
fn drain_reports(result: &SimResult) -> Vec<PeriodReport> {
    let cfg = agent_config();
    (0..16usize)
        .flat_map(|host| {
            let mut agent = HostAgent::new(host, cfg.clone());
            agent.ingest(&result.telemetry.tx_records);
            agent.finish()
        })
        .collect()
}

/// First line index (0-based) where the two traces differ, for diagnostics.
fn first_diff_line(a: &[u8], b: &[u8]) -> (usize, String, String) {
    let a_lines: Vec<&[u8]> = a.split(|&c| c == b'\n').collect();
    let b_lines: Vec<&[u8]> = b.split(|&c| c == b'\n').collect();
    for (i, (la, lb)) in a_lines.iter().zip(b_lines.iter()).enumerate() {
        if la != lb {
            return (
                i,
                String::from_utf8_lossy(la).into_owned(),
                String::from_utf8_lossy(lb).into_owned(),
            );
        }
    }
    let i = a_lines.len().min(b_lines.len());
    (
        i,
        format!("{} lines total", a_lines.len()),
        format!("{} lines total", b_lines.len()),
    )
}

/// Runs one seed through the sequential simulator and every requested
/// partition count, asserting byte-identical traces and bit-identical host
/// reports. Returns coverage counters or the first divergence.
pub fn sim_equivalence_run(
    seed: u64,
    cfg: &SimEquivalenceConfig,
) -> Result<SimEquivalenceStats, String> {
    let topo = || Topology::fat_tree(4, 100.0, 1000);
    let flows = gen_flows(seed, cfg.flows, cfg.end_ns);
    let sim_config = SimConfig {
        end_ns: cfg.end_ns,
        seed,
        clock_error_ns: cfg.clock_error_ns,
        ..SimConfig::default()
    };

    let reference = Simulator::new(topo(), flows.clone(), sim_config.clone()).run();
    let ref_trace = full_trace(&reference);
    let ref_reports = drain_reports(&reference);
    if reference.telemetry.tx_records.is_empty() {
        return Err(format!("seed {seed}: workload produced no TX records"));
    }

    let mut stats = SimEquivalenceStats {
        trace_bytes: ref_trace.len(),
        events: reference.events_processed,
        ..SimEquivalenceStats::default()
    };
    for &p in &cfg.partition_counts {
        let result = run_parallel(topo(), flows.clone(), sim_config.clone(), p)
            .map_err(|e| format!("seed {seed}: partition plan rejected at p={p}: {e}"))?;
        let trace = full_trace(&result);
        if trace != ref_trace {
            let (line, seq, par) = first_diff_line(&ref_trace, &trace);
            return Err(format!(
                "seed {seed}: trace diverges at p={p}, line {line}: sequential {seq:?} vs parallel {par:?}"
            ));
        }
        let reports = drain_reports(&result);
        if reports.len() != ref_reports.len() {
            return Err(format!(
                "seed {seed}: {} host reports at p={p}, sequential drained {}",
                reports.len(),
                ref_reports.len()
            ));
        }
        for (a, b) in ref_reports.iter().zip(reports.iter()) {
            if a.period != b.period
                || a.host != b.host
                || a.config_fingerprint != b.config_fingerprint
                || a.report != b.report
            {
                return Err(format!(
                    "seed {seed}: host {} period {} report differs at p={p}",
                    a.host, a.period
                ));
            }
        }
        stats.reports += reports.len();
        stats.partition_counts += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug builds are ~20x slower than release, so the unit test runs a
    /// shrunken shape; the CI bin runs [`SimEquivalenceConfig::quick`] in
    /// release.
    fn tiny() -> SimEquivalenceConfig {
        SimEquivalenceConfig {
            partition_counts: vec![2],
            flows: 48,
            end_ns: 400_000,
            clock_error_ns: 100,
        }
    }

    #[test]
    fn equivalence_holds_on_a_tiny_workload() {
        let stats = sim_equivalence_run(7, &tiny()).expect("parallel == sequential");
        assert_eq!(stats.partition_counts, 1);
        assert!(stats.trace_bytes > 0);
        assert!(stats.reports > 0, "hosts must drain reports");
        assert!(stats.events > 0);
    }

    #[test]
    fn divergence_reporting_names_the_seed() {
        // Not a divergence run — just pins the error-path formatting by
        // requesting an impossible partition plan (0 partitions).
        let cfg = SimEquivalenceConfig {
            partition_counts: vec![0],
            ..tiny()
        };
        let err = sim_equivalence_run(3, &cfg).unwrap_err();
        assert!(err.contains("seed 3"), "error must carry the seed: {err}");
    }
}
