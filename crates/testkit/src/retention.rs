//! Differential contract for the analyzer's bounded-memory retention tiers
//! and the crash-safe period archive (DESIGN.md §12).
//!
//! One [`retention_diff_run`] call generates a multi-host, multi-period
//! workload, delivers it interleaved across hosts, and asserts the three
//! retention invariants against unbounded references:
//!
//! 1. **Compaction is invisible** — an analyzer that compacts periods past
//!    the hot horizon (and one that additionally compacts early under a
//!    cached-bytes budget) produces curves bit-identical to a fully
//!    unbounded analyzer: the compacted tier's sparse inverse-Haar fallback
//!    accumulates in the same order as the cached hot path.
//! 2. **Eviction is exact forgetting** — a bounded-resident analyzer equals
//!    an unbounded reference fed exactly the periods it retained: evicting
//!    old periods never perturbs what survives.
//! 3. **Recovery reconverges** — an archive-backed analyzer killed
//!    mid-ingest and recovered from its segment files, then fed the rest of
//!    the workload, ends bit-identical to one that never crashed; a torn
//!    segment tail loses exactly the torn record and nothing else.
//!
//! [`retention_soak_run`] is the long-run variant: thousands of periods
//! through a small budget, asserting at checkpoints that resident state
//! stays bounded and hot-tier queries stay bit-identical to an unbounded
//! reference that ingested the same reports.

use std::path::Path;

use umon::{Analyzer, HostAgent, HostAgentConfig, PeriodReport, RetentionPolicy};
use wavesketch::{SelectorKind, SketchConfig};

use crate::diff::DiffError;
use crate::stream::{gen_stream, StreamConfig, StreamKind};

/// Everything one retention differential run needs.
#[derive(Debug, Clone)]
pub struct RetentionDiffConfig {
    /// Host-agent configuration (sketch + period geometry).
    pub agent: HostAgentConfig,
    /// Stream shape, generated per host with a host-mixed seed.
    pub stream: StreamConfig,
    /// Hosts feeding the analyzer.
    pub hosts: usize,
    /// Hot horizon of the bounded scenarios.
    pub hot_periods: u64,
    /// Resident horizon of the eviction and archive scenarios.
    pub resident_periods: u64,
    /// Cached-bytes budget for the early-compaction scenario.
    pub cached_budget: usize,
    /// How many flow ids to compare per host and scenario.
    pub query_sample: u64,
}

impl RetentionDiffConfig {
    /// A configuration sized for debug-build suites: ~25 upload periods per
    /// host against a hot horizon of 4 and a resident horizon of 10, so
    /// every tier transition fires many times.
    pub fn quick(kind: StreamKind) -> Self {
        Self {
            agent: HostAgentConfig {
                sketch: SketchConfig::builder()
                    .rows(3)
                    .width(16)
                    .levels(4)
                    .topk(12)
                    .max_windows(64)
                    .heavy_rows(4)
                    .selector(SelectorKind::Ideal)
                    .build(),
                period_ns: 16 << 13, // 16 windows per upload period
                window_shift: 13,
            },
            stream: StreamConfig {
                kind,
                flows: 24,
                windows: 400,
                start_window: 500,
                mean_packets: 2,
            },
            hosts: 3,
            hot_periods: 4,
            resident_periods: 10,
            cached_budget: 8 * 1024,
            query_sample: 12,
        }
    }
}

/// What a successful retention differential run covered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetentionDiffStats {
    /// Period reports the workload produced (all hosts).
    pub reports: usize,
    /// Periods compacted across the bounded scenarios.
    pub compacted: u64,
    /// Periods evicted across the bounded scenarios.
    pub evicted: u64,
    /// Archived reports replayed by the recovery scenarios.
    pub recovered: u64,
    /// Curve comparisons performed.
    pub curves_compared: usize,
}

/// Compares every sampled flow curve and the host rate curve of `got`
/// against `want`, for each host. Bit-exact: `WindowSeries` is compared
/// with `==` on raw `f64`s.
fn compare_curves(
    got: &Analyzer,
    want: &Analyzer,
    hosts: usize,
    flows: u64,
    scenario: &str,
    fail: &impl Fn(String) -> DiffError,
) -> Result<usize, DiffError> {
    let mut compared = 0;
    for host in 0..hosts {
        for flow in 0..flows {
            if got.flow_curve(host, flow) != want.flow_curve(host, flow) {
                return Err(fail(format!(
                    "{scenario}: host {host} flow {flow} curve differs from the reference"
                )));
            }
            compared += 1;
        }
        if got.host_rate_curve(host) != want.host_rate_curve(host) {
            return Err(fail(format!(
                "{scenario}: host {host} rate curve differs from the reference"
            )));
        }
        compared += 1;
    }
    Ok(compared)
}

/// Generates the per-host reports and flattens them into an interleaved
/// delivery order (round-robin by period across hosts), the shape a shared
/// collection plane produces.
fn interleaved_workload(seed: u64, cfg: &RetentionDiffConfig) -> (Vec<PeriodReport>, usize) {
    let mut per_host: Vec<Vec<PeriodReport>> = Vec::new();
    for host in 0..cfg.hosts {
        let stream = gen_stream(
            seed ^ (host as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            &cfg.stream,
        );
        let mut agent = HostAgent::new(host, cfg.agent.clone());
        for (f, w, v) in &stream {
            agent.observe(
                crate::flow_id_of(f),
                *w << cfg.agent.window_shift,
                *v as u32,
            );
        }
        per_host.push(agent.finish());
    }
    let total = per_host.iter().map(Vec::len).sum();
    let longest = per_host.iter().map(Vec::len).max().unwrap_or(0);
    let mut delivery = Vec::with_capacity(total);
    for i in 0..longest {
        for reports in &per_host {
            if let Some(r) = reports.get(i) {
                delivery.push(r.clone());
            }
        }
    }
    (delivery, total)
}

/// Feeds `delivery` to `analyzer` in small batches (multiple retention
/// enforcement rounds, as live ingest would see).
fn feed(analyzer: &mut Analyzer, delivery: &[PeriodReport]) {
    for chunk in delivery.chunks(7) {
        analyzer.add_reports(chunk.to_vec());
    }
}

/// Runs the retention differential step for one seed. `scratch_dir` is a
/// caller-owned directory for the archive scenarios; its `crash/`,
/// `nocrash/` and `torn/` subdirectories are recreated on every call.
pub fn retention_diff_run(
    seed: u64,
    cfg: &RetentionDiffConfig,
    scratch_dir: &Path,
) -> Result<RetentionDiffStats, DiffError> {
    let fail = |detail: String| DiffError {
        seed,
        kind: cfg.stream.kind,
        detail,
    };
    let mut stats = RetentionDiffStats::default();

    let (delivery, total) = interleaved_workload(seed, cfg);
    if total == 0 {
        return Err(fail("workload produced no reports".into()));
    }
    stats.reports = total;
    let flows = cfg.query_sample.min(cfg.stream.flows);

    // The unbounded reference every scenario is measured against.
    let mut reference = Analyzer::new(cfg.agent.sketch.clone());
    feed(&mut reference, &delivery);

    // Scenario 1: compaction only — bit-identical to unbounded.
    {
        let policy = RetentionPolicy::bounded(cfg.hot_periods, u64::MAX);
        let mut compacting = Analyzer::with_retention(cfg.agent.sketch.clone(), policy);
        feed(&mut compacting, &delivery);
        let rs = compacting.retention_stats();
        if rs.compacted_periods + rs.compacted_on_arrival == 0 {
            return Err(fail(
                "compaction-only: nothing was compacted (vacuous)".into(),
            ));
        }
        if rs.evicted_periods != 0 {
            return Err(fail(
                "compaction-only: eviction fired without a resident bound".into(),
            ));
        }
        let res = compacting.residency();
        let hot_cap = cfg.hosts as u64 * cfg.hot_periods;
        if res.hot_periods as u64 > hot_cap {
            return Err(fail(format!(
                "compaction-only: {} hot periods exceed the {hot_cap} horizon",
                res.hot_periods
            )));
        }
        stats.compacted += rs.compacted_periods + rs.compacted_on_arrival;
        stats.curves_compared += compare_curves(
            &compacting,
            &reference,
            cfg.hosts,
            flows,
            "compaction-only",
            &fail,
        )?;
    }

    // Scenario 1b: a cached-bytes budget compacts early — still identical.
    {
        let policy =
            RetentionPolicy::bounded(u64::MAX / 2, u64::MAX).with_cached_bytes(cfg.cached_budget);
        let mut budgeted = Analyzer::with_retention(cfg.agent.sketch.clone(), policy);
        feed(&mut budgeted, &delivery);
        let res = budgeted.residency();
        if res.cached_bytes > cfg.cached_budget {
            return Err(fail(format!(
                "byte-budget: {} cached bytes exceed the {} budget",
                res.cached_bytes, cfg.cached_budget
            )));
        }
        stats.compacted += budgeted.retention_stats().compacted_periods;
        stats.curves_compared += compare_curves(
            &budgeted,
            &reference,
            cfg.hosts,
            flows,
            "byte-budget",
            &fail,
        )?;
    }

    // Scenario 2: eviction — equals a reference fed only the survivors.
    {
        let policy = RetentionPolicy::bounded(cfg.hot_periods, cfg.resident_periods);
        let mut bounded = Analyzer::with_retention(cfg.agent.sketch.clone(), policy);
        feed(&mut bounded, &delivery);
        let rs = bounded.retention_stats();
        if rs.evicted_periods == 0 {
            return Err(fail("eviction: nothing was evicted (vacuous)".into()));
        }
        stats.evicted += rs.evicted_periods;
        stats.compacted += rs.compacted_periods + rs.compacted_on_arrival;
        for host in 0..cfg.hosts {
            let resident = bounded.host_coverage(host).periods.len() as u64;
            if resident > cfg.resident_periods {
                return Err(fail(format!(
                    "eviction: host {host} holds {resident} periods, budget {}",
                    cfg.resident_periods
                )));
            }
        }
        // Survivors, in the original delivery order.
        let survivors: Vec<PeriodReport> = delivery
            .iter()
            .filter(|r| bounded.host_coverage(r.host).covers(r.period))
            .cloned()
            .collect();
        let mut surviving_ref = Analyzer::new(cfg.agent.sketch.clone());
        feed(&mut surviving_ref, &survivors);
        stats.curves_compared += compare_curves(
            &bounded,
            &surviving_ref,
            cfg.hosts,
            flows,
            "eviction",
            &fail,
        )?;
    }

    // Scenario 3: archive crash/recovery reconverges bit-identically.
    {
        let policy = RetentionPolicy::bounded(cfg.hot_periods, cfg.resident_periods);
        let crash_dir = scratch_dir.join("crash");
        let nocrash_dir = scratch_dir.join("nocrash");
        for d in [&crash_dir, &nocrash_dir] {
            let _ = std::fs::remove_dir_all(d);
        }
        let io_fail = |e: std::io::Error| fail(format!("recovery: archive io error: {e}"));

        let half = delivery.len() / 2;
        {
            let mut doomed = Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &crash_dir)
                .map_err(io_fail)?;
            feed(&mut doomed, &delivery[..half]);
            // Killed here: `doomed` drops without any shutdown path. Every
            // accepted report was already archived (write-ahead).
        }
        let mut revived = Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &crash_dir)
            .map_err(io_fail)?;
        let recovery = revived.recover_from_archive().map_err(io_fail)?;
        if !recovery.damaged_tails.is_empty() {
            return Err(fail(format!(
                "recovery: clean crash reported damaged tails {:?}",
                recovery.damaged_tails
            )));
        }
        if recovery.recovered == 0 {
            return Err(fail("recovery: archive replay recovered nothing".into()));
        }
        stats.recovered += recovery.recovered;
        feed(&mut revived, &delivery[half..]);

        let mut steady = Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &nocrash_dir)
            .map_err(io_fail)?;
        feed(&mut steady, &delivery);
        if revived.residency() != steady.residency() {
            return Err(fail(format!(
                "recovery: residency diverged: {:?} vs {:?}",
                revived.residency(),
                steady.residency()
            )));
        }
        for host in 0..cfg.hosts {
            if revived.host_coverage(host).periods != steady.host_coverage(host).periods {
                return Err(fail(format!(
                    "recovery: host {host} resident periods diverged"
                )));
            }
        }
        stats.curves_compared +=
            compare_curves(&revived, &steady, cfg.hosts, flows, "recovery", &fail)?;
    }

    // Scenario 3b: a torn segment tail loses exactly the torn record.
    {
        let policy = RetentionPolicy::bounded(cfg.hot_periods, cfg.resident_periods);
        let torn_dir = scratch_dir.join("torn");
        let _ = std::fs::remove_dir_all(&torn_dir);
        let io_fail = |e: std::io::Error| fail(format!("torn-tail: archive io error: {e}"));

        let half = delivery.len() / 2;
        {
            let mut doomed = Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &torn_dir)
                .map_err(io_fail)?;
            feed(&mut doomed, &delivery[..half]);
        }
        // Tear the tail of host 0's segment mid-record (a crash mid-write).
        let seg = torn_dir.join("host_0.seg");
        let bytes = std::fs::read(&seg).map_err(io_fail)?;
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).map_err(io_fail)?;
        // The torn record is host 0's last archived = its newest accepted
        // period in the first half (per-host appends are period-ascending
        // here).
        let torn_period = delivery[..half]
            .iter()
            .filter(|r| r.host == 0)
            .map(|r| r.period)
            .max()
            .expect("host 0 delivered in the first half");

        let mut revived =
            Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &torn_dir).map_err(io_fail)?;
        let recovery = revived.recover_from_archive().map_err(io_fail)?;
        if recovery.damaged_tails != vec![0] {
            return Err(fail(format!(
                "torn-tail: damaged tails {:?}, want [0]",
                recovery.damaged_tails
            )));
        }
        stats.recovered += recovery.recovered;
        feed(&mut revived, &delivery[half..]);

        // Reference: never crashed, but never saw the torn record either.
        let mut steady = Analyzer::with_retention(cfg.agent.sketch.clone(), policy);
        let surviving: Vec<PeriodReport> = delivery
            .iter()
            .filter(|r| !(r.host == 0 && r.period == torn_period))
            .cloned()
            .collect();
        feed(&mut steady, &surviving);
        stats.curves_compared +=
            compare_curves(&revived, &steady, cfg.hosts, flows, "torn-tail", &fail)?;
    }

    Ok(stats)
}

/// What [`retention_soak_run`] observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetentionSoakStats {
    /// Upload periods ingested.
    pub periods: u64,
    /// Maximum resident periods observed at any checkpoint.
    pub max_resident_periods: usize,
    /// Maximum cached reconstruction bytes observed at any checkpoint.
    pub max_cached_bytes: usize,
    /// Periods evicted over the run.
    pub evicted: u64,
    /// Checkpoint equivalence comparisons performed.
    pub curves_compared: usize,
}

/// Long-run soak: one host streams `periods` upload periods through a small
/// bounded policy, asserting at every checkpoint (every `checkpoint_every`
/// periods) that resident state honors the budget and that queries over the
/// retained periods stay bit-identical to an unbounded analyzer fed exactly
/// those reports. Everything held by the soak itself is O(budget): the
/// reference window is pruned in lockstep with the bounded analyzer's
/// eviction, so the run can span thousands of periods without growing.
pub fn retention_soak_run(
    seed: u64,
    periods: u64,
    policy: RetentionPolicy,
    checkpoint_every: u64,
) -> Result<RetentionSoakStats, DiffError> {
    let fail = |detail: String| DiffError {
        seed,
        kind: StreamKind::Uniform,
        detail,
    };
    let cfg = RetentionDiffConfig::quick(StreamKind::Uniform);
    let windows_per_period = cfg.agent.period_ns >> cfg.agent.window_shift;
    let mut stats = RetentionSoakStats::default();
    let flows = cfg.query_sample.min(cfg.stream.flows);

    let mut bounded = Analyzer::with_retention(cfg.agent.sketch.clone(), policy);
    // The surviving-report window backing the checkpoint references; pruned
    // to the bounded analyzer's resident set, so it never outgrows the
    // budget either.
    let mut recent: std::collections::BTreeMap<u64, PeriodReport> =
        std::collections::BTreeMap::new();

    let mut agent = HostAgent::new(0, cfg.agent.clone());
    let mut stream_cfg = cfg.stream.clone();
    stream_cfg.windows = windows_per_period * checkpoint_every;
    let mut done = 0u64;
    while done < periods {
        stream_cfg.start_window = done * windows_per_period;
        let stream = gen_stream(seed ^ done, &stream_cfg);
        for (f, w, v) in &stream {
            agent.observe(
                crate::flow_id_of(f),
                *w << cfg.agent.window_shift,
                *v as u32,
            );
        }
        let reports = agent.poll_finished();
        done += checkpoint_every;
        stats.periods = done;
        for r in &reports {
            recent.insert(r.period, r.clone());
        }
        bounded.add_reports(reports);

        let res = bounded.residency();
        stats.max_resident_periods = stats.max_resident_periods.max(res.resident_periods);
        stats.max_cached_bytes = stats.max_cached_bytes.max(res.cached_bytes);
        stats.evicted = bounded.retention_stats().evicted_periods;
        if res.resident_periods as u64 > policy.resident_periods {
            return Err(fail(format!(
                "soak: {} resident periods exceed the {} budget at period {done}",
                res.resident_periods, policy.resident_periods
            )));
        }
        if res.hot_periods as u64 > policy.hot_periods {
            return Err(fail(format!(
                "soak: {} hot periods exceed the {} horizon at period {done}",
                res.hot_periods, policy.hot_periods
            )));
        }
        if let Some(budget) = policy.max_cached_bytes {
            if res.cached_bytes > budget {
                return Err(fail(format!(
                    "soak: {} cached bytes exceed the {budget} budget at period {done}",
                    res.cached_bytes
                )));
            }
        }

        // Prune the reference window to the bounded analyzer's resident set,
        // then assert bit-identical queries over the survivors.
        let coverage = bounded.host_coverage(0);
        recent.retain(|p, _| coverage.covers(*p));
        if recent.len() != res.resident_periods {
            return Err(fail(format!(
                "soak: reference window {} periods vs resident {} at period {done}",
                recent.len(),
                res.resident_periods
            )));
        }
        let mut reference = Analyzer::new(cfg.agent.sketch.clone());
        reference.add_reports(recent.values().cloned().collect());
        stats.curves_compared +=
            compare_curves(&bounded, &reference, 1, flows, "soak-checkpoint", &fail)?;
    }
    Ok(stats)
}
