//! Differential contract for the analyzer's bounded-memory retention tiers
//! and the crash-safe period archive (DESIGN.md §12).
//!
//! One [`retention_diff_run`] call generates a multi-host, multi-period
//! workload, delivers it interleaved across hosts, and asserts the three
//! retention invariants against unbounded references:
//!
//! 1. **Compaction is invisible** — an analyzer that compacts periods past
//!    the hot horizon (and one that additionally compacts early under a
//!    cached-bytes budget) produces curves bit-identical to a fully
//!    unbounded analyzer: the compacted tier's sparse inverse-Haar fallback
//!    accumulates in the same order as the cached hot path.
//! 2. **Eviction is exact forgetting** — a bounded-resident analyzer equals
//!    an unbounded reference fed exactly the periods it retained: evicting
//!    old periods never perturbs what survives.
//! 3. **Recovery reconverges** — an archive-backed analyzer killed
//!    mid-ingest and recovered from its segment files, then fed the rest of
//!    the workload, ends bit-identical to one that never crashed; a torn
//!    segment tail loses exactly the torn record and nothing else.
//! 4. **The cold tier erases the eviction horizon** — an archive-backed
//!    bounded analyzer answers queries over *evicted* periods by reading
//!    them back from its segments, bit-identical to a fully unbounded
//!    analyzer; a segment cache too small for even one record only costs
//!    disk reads, never correctness.
//! 5. **Backfill heals torn history** — after a crash that tears a segment
//!    tail, the recovered analyzer's [`Analyzer::backfill_requests`] asks
//!    the affected hosts to re-upload over the normal collection plane
//!    ([`umon::HostUplink::backfill`]), and the healed analyzer ends
//!    bit-identical to the unbounded reference: the tear lost nothing.
//!
//! [`retention_soak_run`] is the long-run variant: thousands of periods
//! through a small budget, asserting at checkpoints that resident state
//! stays bounded and hot-tier queries stay bit-identical to an unbounded
//! reference that ingested the same reports. [`cold_soak_run`] is its cold
//! twin: checkpoints compare the *full* history — hot, compacted and
//! archived-cold — against an unbounded analyzer.

use std::path::Path;

use umon::{
    Analyzer, Collector, HostAgent, HostAgentConfig, HostUplink, PerfectTransport, PeriodReport,
    RetentionPolicy, RetransmitPolicy,
};
use wavesketch::{SelectorKind, SketchConfig};

use crate::diff::DiffError;
use crate::stream::{gen_stream, StreamConfig, StreamKind};

/// Everything one retention differential run needs.
#[derive(Debug, Clone)]
pub struct RetentionDiffConfig {
    /// Host-agent configuration (sketch + period geometry).
    pub agent: HostAgentConfig,
    /// Stream shape, generated per host with a host-mixed seed.
    pub stream: StreamConfig,
    /// Hosts feeding the analyzer.
    pub hosts: usize,
    /// Hot horizon of the bounded scenarios.
    pub hot_periods: u64,
    /// Resident horizon of the eviction and archive scenarios.
    pub resident_periods: u64,
    /// Cached-bytes budget for the early-compaction scenario.
    pub cached_budget: usize,
    /// How many flow ids to compare per host and scenario.
    pub query_sample: u64,
}

impl RetentionDiffConfig {
    /// A configuration sized for debug-build suites: ~25 upload periods per
    /// host against a hot horizon of 4 and a resident horizon of 10, so
    /// every tier transition fires many times.
    pub fn quick(kind: StreamKind) -> Self {
        Self {
            agent: HostAgentConfig {
                sketch: SketchConfig::builder()
                    .rows(3)
                    .width(16)
                    .levels(4)
                    .topk(12)
                    .max_windows(64)
                    .heavy_rows(4)
                    .selector(SelectorKind::Ideal)
                    .build(),
                period_ns: 16 << 13, // 16 windows per upload period
                window_shift: 13,
            },
            stream: StreamConfig {
                kind,
                flows: 24,
                windows: 400,
                start_window: 500,
                mean_packets: 2,
            },
            hosts: 3,
            hot_periods: 4,
            resident_periods: 10,
            cached_budget: 8 * 1024,
            query_sample: 12,
        }
    }
}

/// What a successful retention differential run covered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetentionDiffStats {
    /// Period reports the workload produced (all hosts).
    pub reports: usize,
    /// Periods compacted across the bounded scenarios.
    pub compacted: u64,
    /// Periods evicted across the bounded scenarios.
    pub evicted: u64,
    /// Archived reports replayed by the recovery scenarios.
    pub recovered: u64,
    /// Cold-tier record fetches (cache hits + disk reads) across the cold
    /// scenarios.
    pub cold_reads: u64,
    /// Reports re-uploaded by hosts answering backfill requests.
    pub backfilled: u64,
    /// Curve comparisons performed.
    pub curves_compared: usize,
}

/// Compares every sampled flow curve and the host rate curve of `got`
/// against `want`, for each host. Bit-exact: `WindowSeries` is compared
/// with `==` on raw `f64`s.
fn compare_curves(
    got: &Analyzer,
    want: &Analyzer,
    hosts: usize,
    flows: u64,
    scenario: &str,
    fail: &impl Fn(String) -> DiffError,
) -> Result<usize, DiffError> {
    let mut compared = 0;
    for host in 0..hosts {
        for flow in 0..flows {
            if got.flow_curve(host, flow) != want.flow_curve(host, flow) {
                return Err(fail(format!(
                    "{scenario}: host {host} flow {flow} curve differs from the reference"
                )));
            }
            compared += 1;
        }
        if got.host_rate_curve(host) != want.host_rate_curve(host) {
            return Err(fail(format!(
                "{scenario}: host {host} rate curve differs from the reference"
            )));
        }
        compared += 1;
    }
    Ok(compared)
}

/// Generates the per-host reports and flattens them into an interleaved
/// delivery order (round-robin by period across hosts), the shape a shared
/// collection plane produces.
fn interleaved_workload(seed: u64, cfg: &RetentionDiffConfig) -> (Vec<PeriodReport>, usize) {
    let mut per_host: Vec<Vec<PeriodReport>> = Vec::new();
    for host in 0..cfg.hosts {
        let stream = gen_stream(
            seed ^ (host as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            &cfg.stream,
        );
        let mut agent = HostAgent::new(host, cfg.agent.clone());
        for (f, w, v) in &stream {
            agent.observe(
                crate::flow_id_of(f),
                *w << cfg.agent.window_shift,
                *v as u32,
            );
        }
        per_host.push(agent.finish());
    }
    let total = per_host.iter().map(Vec::len).sum();
    let longest = per_host.iter().map(Vec::len).max().unwrap_or(0);
    let mut delivery = Vec::with_capacity(total);
    for i in 0..longest {
        for reports in &per_host {
            if let Some(r) = reports.get(i) {
                delivery.push(r.clone());
            }
        }
    }
    (delivery, total)
}

/// Feeds `delivery` to `analyzer` in small batches (multiple retention
/// enforcement rounds, as live ingest would see).
fn feed(analyzer: &mut Analyzer, delivery: &[PeriodReport]) {
    for chunk in delivery.chunks(7) {
        analyzer.add_reports(chunk.to_vec());
    }
}

/// Ticks every uplink and pumps the collector until all uplinks drain (or a
/// generous round cap expires — a lossless transport drains in a few).
fn pump_until_drained(
    uplinks: &mut [HostUplink],
    transport: &mut PerfectTransport,
    collector: &mut Collector,
    analyzer: &mut Analyzer,
    now: &mut u64,
) {
    for _ in 0..100 {
        for u in uplinks.iter_mut() {
            u.tick(*now, transport);
        }
        collector.pump(transport, analyzer);
        *now += 1;
        if uplinks.iter().all(|u| u.in_flight() == 0) {
            break;
        }
    }
}

/// Runs the retention differential step for one seed. `scratch_dir` is a
/// caller-owned directory for the archive scenarios; its `crash/`,
/// `nocrash/` and `torn/` subdirectories are recreated on every call.
pub fn retention_diff_run(
    seed: u64,
    cfg: &RetentionDiffConfig,
    scratch_dir: &Path,
) -> Result<RetentionDiffStats, DiffError> {
    let fail = |detail: String| DiffError {
        seed,
        kind: cfg.stream.kind,
        detail,
    };
    let mut stats = RetentionDiffStats::default();

    let (delivery, total) = interleaved_workload(seed, cfg);
    if total == 0 {
        return Err(fail("workload produced no reports".into()));
    }
    stats.reports = total;
    let flows = cfg.query_sample.min(cfg.stream.flows);

    // The unbounded reference every scenario is measured against.
    let mut reference = Analyzer::new(cfg.agent.sketch.clone());
    feed(&mut reference, &delivery);

    // Scenario 1: compaction only — bit-identical to unbounded.
    {
        let policy = RetentionPolicy::bounded(cfg.hot_periods, u64::MAX);
        let mut compacting = Analyzer::with_retention(cfg.agent.sketch.clone(), policy);
        feed(&mut compacting, &delivery);
        let rs = compacting.retention_stats();
        if rs.compacted_periods + rs.compacted_on_arrival == 0 {
            return Err(fail(
                "compaction-only: nothing was compacted (vacuous)".into(),
            ));
        }
        if rs.evicted_periods != 0 {
            return Err(fail(
                "compaction-only: eviction fired without a resident bound".into(),
            ));
        }
        let res = compacting.residency();
        let hot_cap = cfg.hosts as u64 * cfg.hot_periods;
        if res.hot_periods as u64 > hot_cap {
            return Err(fail(format!(
                "compaction-only: {} hot periods exceed the {hot_cap} horizon",
                res.hot_periods
            )));
        }
        stats.compacted += rs.compacted_periods + rs.compacted_on_arrival;
        stats.curves_compared += compare_curves(
            &compacting,
            &reference,
            cfg.hosts,
            flows,
            "compaction-only",
            &fail,
        )?;
    }

    // Scenario 1b: a cached-bytes budget compacts early — still identical.
    {
        let policy =
            RetentionPolicy::bounded(u64::MAX / 2, u64::MAX).with_cached_bytes(cfg.cached_budget);
        let mut budgeted = Analyzer::with_retention(cfg.agent.sketch.clone(), policy);
        feed(&mut budgeted, &delivery);
        let res = budgeted.residency();
        if res.cached_bytes > cfg.cached_budget {
            return Err(fail(format!(
                "byte-budget: {} cached bytes exceed the {} budget",
                res.cached_bytes, cfg.cached_budget
            )));
        }
        stats.compacted += budgeted.retention_stats().compacted_periods;
        stats.curves_compared += compare_curves(
            &budgeted,
            &reference,
            cfg.hosts,
            flows,
            "byte-budget",
            &fail,
        )?;
    }

    // Scenario 2: eviction — equals a reference fed only the survivors.
    {
        let policy = RetentionPolicy::bounded(cfg.hot_periods, cfg.resident_periods);
        let mut bounded = Analyzer::with_retention(cfg.agent.sketch.clone(), policy);
        feed(&mut bounded, &delivery);
        let rs = bounded.retention_stats();
        if rs.evicted_periods == 0 {
            return Err(fail("eviction: nothing was evicted (vacuous)".into()));
        }
        stats.evicted += rs.evicted_periods;
        stats.compacted += rs.compacted_periods + rs.compacted_on_arrival;
        for host in 0..cfg.hosts {
            let resident = bounded.host_coverage(host).periods.len() as u64;
            if resident > cfg.resident_periods {
                return Err(fail(format!(
                    "eviction: host {host} holds {resident} periods, budget {}",
                    cfg.resident_periods
                )));
            }
        }
        // Survivors, in the original delivery order.
        let survivors: Vec<PeriodReport> = delivery
            .iter()
            .filter(|r| bounded.host_coverage(r.host).covers(r.period))
            .cloned()
            .collect();
        let mut surviving_ref = Analyzer::new(cfg.agent.sketch.clone());
        feed(&mut surviving_ref, &survivors);
        stats.curves_compared += compare_curves(
            &bounded,
            &surviving_ref,
            cfg.hosts,
            flows,
            "eviction",
            &fail,
        )?;
    }

    // Scenario 3: archive crash/recovery reconverges bit-identically.
    {
        let policy = RetentionPolicy::bounded(cfg.hot_periods, cfg.resident_periods);
        let crash_dir = scratch_dir.join("crash");
        let nocrash_dir = scratch_dir.join("nocrash");
        for d in [&crash_dir, &nocrash_dir] {
            let _ = std::fs::remove_dir_all(d);
        }
        let io_fail = |e: std::io::Error| fail(format!("recovery: archive io error: {e}"));

        let half = delivery.len() / 2;
        {
            let mut doomed = Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &crash_dir)
                .map_err(io_fail)?;
            feed(&mut doomed, &delivery[..half]);
            // Killed here: `doomed` drops without any shutdown path. Every
            // accepted report was already archived (write-ahead).
        }
        let mut revived = Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &crash_dir)
            .map_err(io_fail)?;
        let recovery = revived.recover_from_archive().map_err(io_fail)?;
        if !recovery.damaged_tails.is_empty() {
            return Err(fail(format!(
                "recovery: clean crash reported damaged tails {:?}",
                recovery.damaged_tails
            )));
        }
        if recovery.recovered == 0 {
            return Err(fail("recovery: archive replay recovered nothing".into()));
        }
        stats.recovered += recovery.recovered;
        feed(&mut revived, &delivery[half..]);

        let mut steady = Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &nocrash_dir)
            .map_err(io_fail)?;
        feed(&mut steady, &delivery);
        if revived.residency() != steady.residency() {
            return Err(fail(format!(
                "recovery: residency diverged: {:?} vs {:?}",
                revived.residency(),
                steady.residency()
            )));
        }
        for host in 0..cfg.hosts {
            if revived.host_coverage(host).periods != steady.host_coverage(host).periods {
                return Err(fail(format!(
                    "recovery: host {host} resident periods diverged"
                )));
            }
        }
        stats.curves_compared +=
            compare_curves(&revived, &steady, cfg.hosts, flows, "recovery", &fail)?;
    }

    // Scenario 3b: a torn segment tail loses exactly the torn record.
    {
        let policy = RetentionPolicy::bounded(cfg.hot_periods, cfg.resident_periods);
        let torn_dir = scratch_dir.join("torn");
        let _ = std::fs::remove_dir_all(&torn_dir);
        let io_fail = |e: std::io::Error| fail(format!("torn-tail: archive io error: {e}"));

        let half = delivery.len() / 2;
        {
            let mut doomed = Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &torn_dir)
                .map_err(io_fail)?;
            feed(&mut doomed, &delivery[..half]);
        }
        // Tear the tail of host 0's segment mid-record (a crash mid-write).
        let seg = torn_dir.join("host_0.seg");
        let bytes = std::fs::read(&seg).map_err(io_fail)?;
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).map_err(io_fail)?;
        // The torn record is host 0's last archived = its newest accepted
        // period in the first half (per-host appends are period-ascending
        // here).
        let torn_period = delivery[..half]
            .iter()
            .filter(|r| r.host == 0)
            .map(|r| r.period)
            .max()
            .expect("host 0 delivered in the first half");

        let mut revived =
            Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &torn_dir).map_err(io_fail)?;
        let recovery = revived.recover_from_archive().map_err(io_fail)?;
        if recovery.damaged_tails != vec![0] {
            return Err(fail(format!(
                "torn-tail: damaged tails {:?}, want [0]",
                recovery.damaged_tails
            )));
        }
        stats.recovered += recovery.recovered;
        feed(&mut revived, &delivery[half..]);

        // Reference: never crashed, but never saw the torn record either.
        // Archive-backed like the revived analyzer, so both answer queries
        // over their full (cold-inclusive) history and differ only if the
        // tear cost more than the one torn record.
        let torn_ref_dir = scratch_dir.join("torn_ref");
        let _ = std::fs::remove_dir_all(&torn_ref_dir);
        let mut steady = Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &torn_ref_dir)
            .map_err(io_fail)?;
        let surviving: Vec<PeriodReport> = delivery
            .iter()
            .filter(|r| !(r.host == 0 && r.period == torn_period))
            .cloned()
            .collect();
        feed(&mut steady, &surviving);
        stats.curves_compared +=
            compare_curves(&revived, &steady, cfg.hosts, flows, "torn-tail", &fail)?;
    }

    // Scenario 4: cold tier — the eviction horizon is not a data horizon.
    // An archive-backed bounded analyzer equals the fully unbounded
    // reference on every curve, because evicted periods are read back from
    // the segments at query time.
    {
        let policy = RetentionPolicy::bounded(cfg.hot_periods, cfg.resident_periods);
        let cold_dir = scratch_dir.join("cold");
        let _ = std::fs::remove_dir_all(&cold_dir);
        let io_fail = |e: std::io::Error| fail(format!("cold-tier: archive io error: {e}"));
        let mut archived =
            Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &cold_dir).map_err(io_fail)?;
        feed(&mut archived, &delivery);
        if archived.retention_stats().evicted_periods == 0 {
            return Err(fail("cold-tier: nothing was evicted (vacuous)".into()));
        }
        stats.curves_compared +=
            compare_curves(&archived, &reference, cfg.hosts, flows, "cold-tier", &fail)?;
        let rs = archived.retention_stats();
        if rs.cold_misses == 0 {
            return Err(fail("cold-tier: queries never touched the archive".into()));
        }
        if rs.cold_read_errors != 0 {
            return Err(fail(format!(
                "cold-tier: {} archive read-backs failed",
                rs.cold_read_errors
            )));
        }
        stats.cold_reads += rs.cold_hits + rs.cold_misses;
    }

    // Scenario 4b: a segment cache too small for even one record thrashes
    // (every cold fetch is a disk read) but stays bit-identical.
    {
        let policy = RetentionPolicy::bounded(cfg.hot_periods, cfg.resident_periods)
            .with_cold_cache_bytes(1);
        let thrash_dir = scratch_dir.join("cold_thrash");
        let _ = std::fs::remove_dir_all(&thrash_dir);
        let io_fail = |e: std::io::Error| fail(format!("cold-thrash: archive io error: {e}"));
        let mut thrashing = Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &thrash_dir)
            .map_err(io_fail)?;
        feed(&mut thrashing, &delivery);
        stats.curves_compared += compare_curves(
            &thrashing,
            &reference,
            cfg.hosts,
            flows,
            "cold-thrash",
            &fail,
        )?;
        let rs = thrashing.retention_stats();
        if rs.cold_hits != 0 {
            return Err(fail(format!(
                "cold-thrash: {} cache hits under a 1-byte budget",
                rs.cold_hits
            )));
        }
        if rs.cold_misses == 0 || rs.cold_read_errors != 0 {
            return Err(fail(format!(
                "cold-thrash: {} misses, {} errors — want misses > 0, errors == 0",
                rs.cold_misses, rs.cold_read_errors
            )));
        }
        stats.cold_reads += rs.cold_misses;
    }

    // Scenario 5: kill/recover with a torn tail, healed by backfill over
    // the collection plane. The hosts' uplinks and the collector survive
    // the analyzer crash; the revived analyzer truncates the damage, asks
    // the torn host to re-upload, and — because re-uploads flow through the
    // normal transport → collector → ingest path — ends bit-identical to
    // the unbounded reference: the tear lost nothing at all.
    {
        let policy = RetentionPolicy::bounded(cfg.hot_periods, cfg.resident_periods);
        let bf_dir = scratch_dir.join("backfill");
        let _ = std::fs::remove_dir_all(&bf_dir);
        let io_fail = |e: std::io::Error| fail(format!("backfill: archive io error: {e}"));

        let mut transport = PerfectTransport::new();
        let mut uplinks: Vec<HostUplink> = (0..cfg.hosts)
            .map(|h| HostUplink::new(h, RetransmitPolicy::default()))
            .collect();
        let mut collector = Collector::new();
        let mut now = 0u64;
        let half = delivery.len() / 2;
        {
            let mut doomed = Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &bf_dir)
                .map_err(io_fail)?;
            for chunk in delivery[..half].chunks(7) {
                for r in chunk {
                    uplinks[r.host].submit(vec![r.clone()]);
                }
                pump_until_drained(
                    &mut uplinks,
                    &mut transport,
                    &mut collector,
                    &mut doomed,
                    &mut now,
                );
            }
            // Killed here; every accepted report was archived write-ahead,
            // and the uplinks' replay buffers still hold their copies.
        }
        // The crash tears host 0's newest archived record mid-write.
        let seg = bf_dir.join("host_0.seg");
        let bytes = std::fs::read(&seg).map_err(io_fail)?;
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).map_err(io_fail)?;

        let mut revived =
            Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &bf_dir).map_err(io_fail)?;
        let recovery = revived.recover_from_archive().map_err(io_fail)?;
        if recovery.damaged_tails != vec![0] {
            return Err(fail(format!(
                "backfill: damaged tails {:?}, want [0]",
                recovery.damaged_tails
            )));
        }
        if recovery.torn_tails.len() != 1 || recovery.torn_tails[0].lost_records == 0 {
            return Err(fail(format!(
                "backfill: torn-tail report {:?} names no lost records",
                recovery.torn_tails
            )));
        }
        stats.recovered += recovery.recovered;

        let asks = revived.backfill_requests(&recovery);
        if asks.iter().map(|a| a.host).collect::<Vec<_>>() != vec![0] {
            return Err(fail(format!(
                "backfill: requests {asks:?}, want exactly host 0"
            )));
        }
        let mut healed = 0usize;
        for ask in &asks {
            healed += uplinks[ask.host].backfill(ask.after_period);
        }
        if healed == 0 {
            return Err(fail(
                "backfill: the replay buffer had nothing for the torn span".into(),
            ));
        }
        stats.backfilled += healed as u64;
        pump_until_drained(
            &mut uplinks,
            &mut transport,
            &mut collector,
            &mut revived,
            &mut now,
        );
        for chunk in delivery[half..].chunks(7) {
            for r in chunk {
                uplinks[r.host].submit(vec![r.clone()]);
            }
            pump_until_drained(
                &mut uplinks,
                &mut transport,
                &mut collector,
                &mut revived,
                &mut now,
            );
        }
        stats.curves_compared +=
            compare_curves(&revived, &reference, cfg.hosts, flows, "backfill", &fail)?;
    }

    Ok(stats)
}

/// What [`retention_soak_run`] observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetentionSoakStats {
    /// Upload periods ingested.
    pub periods: u64,
    /// Maximum resident periods observed at any checkpoint.
    pub max_resident_periods: usize,
    /// Maximum cached reconstruction bytes observed at any checkpoint.
    pub max_cached_bytes: usize,
    /// Periods evicted over the run.
    pub evicted: u64,
    /// Checkpoint equivalence comparisons performed.
    pub curves_compared: usize,
}

/// Long-run soak: one host streams `periods` upload periods through a small
/// bounded policy, asserting at every checkpoint (every `checkpoint_every`
/// periods) that resident state honors the budget and that queries over the
/// retained periods stay bit-identical to an unbounded analyzer fed exactly
/// those reports. Everything held by the soak itself is O(budget): the
/// reference window is pruned in lockstep with the bounded analyzer's
/// eviction, so the run can span thousands of periods without growing.
pub fn retention_soak_run(
    seed: u64,
    periods: u64,
    policy: RetentionPolicy,
    checkpoint_every: u64,
) -> Result<RetentionSoakStats, DiffError> {
    let fail = |detail: String| DiffError {
        seed,
        kind: StreamKind::Uniform,
        detail,
    };
    let cfg = RetentionDiffConfig::quick(StreamKind::Uniform);
    let windows_per_period = cfg.agent.period_ns >> cfg.agent.window_shift;
    let mut stats = RetentionSoakStats::default();
    let flows = cfg.query_sample.min(cfg.stream.flows);

    let mut bounded = Analyzer::with_retention(cfg.agent.sketch.clone(), policy);
    // The surviving-report window backing the checkpoint references; pruned
    // to the bounded analyzer's resident set, so it never outgrows the
    // budget either.
    let mut recent: std::collections::BTreeMap<u64, PeriodReport> =
        std::collections::BTreeMap::new();

    let mut agent = HostAgent::new(0, cfg.agent.clone());
    let mut stream_cfg = cfg.stream.clone();
    stream_cfg.windows = windows_per_period * checkpoint_every;
    let mut done = 0u64;
    while done < periods {
        stream_cfg.start_window = done * windows_per_period;
        let stream = gen_stream(seed ^ done, &stream_cfg);
        for (f, w, v) in &stream {
            agent.observe(
                crate::flow_id_of(f),
                *w << cfg.agent.window_shift,
                *v as u32,
            );
        }
        let reports = agent.poll_finished();
        done += checkpoint_every;
        stats.periods = done;
        for r in &reports {
            recent.insert(r.period, r.clone());
        }
        bounded.add_reports(reports);

        let res = bounded.residency();
        stats.max_resident_periods = stats.max_resident_periods.max(res.resident_periods);
        stats.max_cached_bytes = stats.max_cached_bytes.max(res.cached_bytes);
        stats.evicted = bounded.retention_stats().evicted_periods;
        if res.resident_periods as u64 > policy.resident_periods {
            return Err(fail(format!(
                "soak: {} resident periods exceed the {} budget at period {done}",
                res.resident_periods, policy.resident_periods
            )));
        }
        if res.hot_periods as u64 > policy.hot_periods {
            return Err(fail(format!(
                "soak: {} hot periods exceed the {} horizon at period {done}",
                res.hot_periods, policy.hot_periods
            )));
        }
        if let Some(budget) = policy.max_cached_bytes {
            if res.cached_bytes > budget {
                return Err(fail(format!(
                    "soak: {} cached bytes exceed the {budget} budget at period {done}",
                    res.cached_bytes
                )));
            }
        }

        // Prune the reference window to the bounded analyzer's resident set,
        // then assert bit-identical queries over the survivors.
        let coverage = bounded.host_coverage(0);
        recent.retain(|p, _| coverage.covers(*p));
        if recent.len() != res.resident_periods {
            return Err(fail(format!(
                "soak: reference window {} periods vs resident {} at period {done}",
                recent.len(),
                res.resident_periods
            )));
        }
        let mut reference = Analyzer::new(cfg.agent.sketch.clone());
        reference.add_reports(recent.values().cloned().collect());
        stats.curves_compared +=
            compare_curves(&bounded, &reference, 1, flows, "soak-checkpoint", &fail)?;
    }
    Ok(stats)
}

/// Long-run cold-tier soak: one host streams `periods` upload periods
/// through a bounded, archive-backed analyzer, and every checkpoint compares
/// the *full* history — hot, compacted and archived-cold — bit-identically
/// against an unbounded analyzer fed the same reports. Unlike
/// [`retention_soak_run`], the reference deliberately keeps everything
/// (O(periods) memory): the point is that the bounded analyzer's disk
/// read-back matches it over the entire horizon, not just the resident set.
pub fn cold_soak_run(
    seed: u64,
    periods: u64,
    policy: RetentionPolicy,
    checkpoint_every: u64,
    scratch_dir: &Path,
) -> Result<RetentionSoakStats, DiffError> {
    let fail = |detail: String| DiffError {
        seed,
        kind: StreamKind::Uniform,
        detail,
    };
    let io_fail = |e: std::io::Error| fail(format!("cold-soak: archive io error: {e}"));
    let cfg = RetentionDiffConfig::quick(StreamKind::Uniform);
    let windows_per_period = cfg.agent.period_ns >> cfg.agent.window_shift;
    let flows = cfg.query_sample.min(cfg.stream.flows);
    let mut stats = RetentionSoakStats::default();

    let dir = scratch_dir.join("cold_soak");
    let _ = std::fs::remove_dir_all(&dir);
    let mut bounded =
        Analyzer::with_archive(cfg.agent.sketch.clone(), policy, &dir).map_err(io_fail)?;
    let mut reference = Analyzer::new(cfg.agent.sketch.clone());

    let mut agent = HostAgent::new(0, cfg.agent.clone());
    let mut stream_cfg = cfg.stream.clone();
    stream_cfg.windows = windows_per_period * checkpoint_every;
    let mut done = 0u64;
    while done < periods {
        stream_cfg.start_window = done * windows_per_period;
        let stream = gen_stream(seed ^ done, &stream_cfg);
        for (f, w, v) in &stream {
            agent.observe(
                crate::flow_id_of(f),
                *w << cfg.agent.window_shift,
                *v as u32,
            );
        }
        let reports = agent.poll_finished();
        done += checkpoint_every;
        stats.periods = done;
        reference.add_reports(reports.clone());
        bounded.add_reports(reports);

        let res = bounded.residency();
        stats.max_resident_periods = stats.max_resident_periods.max(res.resident_periods);
        stats.max_cached_bytes = stats.max_cached_bytes.max(res.cached_bytes);
        stats.evicted = bounded.retention_stats().evicted_periods;
        if res.resident_periods as u64 > policy.resident_periods {
            return Err(fail(format!(
                "cold-soak: {} resident periods exceed the {} budget at period {done}",
                res.resident_periods, policy.resident_periods
            )));
        }
        stats.curves_compared += compare_curves(
            &bounded,
            &reference,
            1,
            flows,
            "cold-soak-checkpoint",
            &fail,
        )?;
    }
    let rs = bounded.retention_stats();
    if rs.evicted_periods == 0 {
        return Err(fail("cold-soak: nothing was evicted (vacuous)".into()));
    }
    if rs.cold_misses == 0 {
        return Err(fail("cold-soak: queries never touched the archive".into()));
    }
    if rs.cold_read_errors != 0 {
        return Err(fail(format!(
            "cold-soak: {} archive read-backs failed",
            rs.cold_read_errors
        )));
    }
    Ok(stats)
}
