//! The exact oracle: dense per-window counters replayed with the bucket's
//! own epoch rules, transformed offline with [`wavesketch::haar`], compared
//! against drained reports field by field.
//!
//! Two truths are maintained per stream:
//!
//! * per **flow** — what a collision-free bucket dedicated to the flow sees
//!   (validates the Streaming variant and exact-k reconstruction);
//! * per **light cell** `(row, col)` — the merged stream of every flow
//!   hashing into that bucket (validates Basic / Full / HW light parts,
//!   including collisions, epoch rollover and straggler folding).
//!
//! The error check uses the Appendix A fact that the detail basis is
//! orthogonal: dropping the coefficient at loop level `l` with value `v`
//! adds exactly `(2^{-(l+1)/2} · v)^2` to the squared L2 error. The minimal
//! k-term squared error — total weighted energy minus the k largest energies
//! — is therefore *unique* even when the retained set is not (ties carry
//! equal energy), which is what makes it a sound oracle for the ideal
//! selector's heap-order-dependent tie-breaking.

use std::collections::BTreeMap;

use wavesketch::reconstruct::reconstruct;
use wavesketch::{haar, BucketReport, FlowKey, SelectorKind, SketchConfig};

/// Dense ground truth of one bucket epoch: the value of every window from
/// the epoch's first packet to its last touched window.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochTruth {
    /// Absolute window id of the epoch start.
    pub w0: u64,
    /// `counts[o]` is the exact value at window `w0 + o`; the last entry is
    /// the last window the epoch touched.
    pub counts: Vec<i64>,
}

impl EpochTruth {
    /// Padded epoch length — what the sketch reports as `padded_len`.
    pub fn padded_len(&self) -> usize {
        self.counts.len().max(1).next_power_of_two()
    }

    /// Exact epoch total.
    pub fn total(&self) -> i64 {
        self.counts.iter().sum()
    }

    /// Effective decomposition depth: `min(levels, log2(padded_len))`.
    pub fn effective_levels(&self, levels: u32) -> u32 {
        levels.min(self.padded_len().trailing_zeros())
    }

    /// The approximation array the sketch must report: block sums over
    /// `2^levels` windows (one total when the epoch is shorter than a block).
    pub fn expected_approx(&self, levels: u32) -> Vec<i64> {
        let padded = haar::pad_to_pow2(&self.counts);
        let block = (1usize << levels).min(padded.len());
        padded.chunks(block).map(|c| c.iter().sum()).collect()
    }

    /// Exact offline Haar coefficients of the epoch.
    pub fn coefficients(&self, levels: u32) -> haar::HaarCoefficients {
        haar::transform(&self.counts, levels)
    }

    /// Weighted energies `(2^{-(l+1)/2} · v)^2` of all nonzero details.
    fn detail_energies(&self, levels: u32) -> Vec<f64> {
        let coeffs = self.coefficients(levels);
        let mut energies = Vec::new();
        for (l, row) in coeffs.details.iter().enumerate() {
            let w = haar::normalized_weight(l as u32);
            for &v in row {
                if v != 0 {
                    energies.push((w * v as f64) * (w * v as f64));
                }
            }
        }
        energies
    }

    /// Total weighted detail energy — the squared error of keeping nothing.
    pub fn total_detail_energy(&self, levels: u32) -> f64 {
        self.detail_energies(levels).iter().sum()
    }

    /// The unique minimal squared L2 error of any `k`-term detail selection
    /// (Appendix A/B): total energy minus the `k` largest energies.
    pub fn optimal_sq_error(&self, levels: u32, k: usize) -> f64 {
        let mut e = self.detail_energies(levels);
        e.sort_by(|a, b| b.partial_cmp(a).expect("energies are finite"));
        e.iter().skip(k).sum()
    }

    /// Squared L2 error of the report's (unclamped) reconstruction vs the
    /// dense truth, over the padded window range.
    pub fn report_sq_error(&self, report: &BucketReport) -> f64 {
        let rec = reconstruct(&report.coeffs());
        let mut err = 0.0;
        for (i, &r) in rec.iter().enumerate() {
            let truth = self.counts.get(i).copied().unwrap_or(0) as f64;
            err += (r - truth) * (r - truth);
        }
        err
    }
}

/// What to hold a report to: the sketch's wavelet depth, coefficient budget
/// and selection strategy.
#[derive(Debug, Clone)]
pub struct CheckParams {
    /// Decomposition depth `L` the sketch ran with.
    pub levels: u32,
    /// Retained-coefficient budget `K`.
    pub topk: usize,
    /// Selection strategy — decides how tight the error bound is.
    pub selector: SelectorKind,
}

impl CheckParams {
    /// Parameters matching a sketch configuration.
    pub fn from_config(config: &SketchConfig) -> Self {
        Self {
            levels: config.levels,
            topk: config.topk,
            selector: config.selector,
        }
    }
}

/// Checks one drained epoch report against its dense truth. Every field is
/// validated: `w0`, depth, padded length, the full approximation array, each
/// retained detail coefficient (exact value, in-range position, uniqueness,
/// budget) and the reconstruction error bound for the selector in use.
pub fn check_epoch_report(
    truth: &EpochTruth,
    report: &BucketReport,
    params: &CheckParams,
) -> Result<(), String> {
    if report.w0 != truth.w0 {
        return Err(format!("w0 {} != expected {}", report.w0, truth.w0));
    }
    if report.levels != params.levels {
        return Err(format!(
            "levels {} != configured {}",
            report.levels, params.levels
        ));
    }
    if report.padded_len != truth.padded_len() {
        return Err(format!(
            "padded_len {} != expected {} (epoch of {} windows)",
            report.padded_len,
            truth.padded_len(),
            truth.counts.len()
        ));
    }
    let approx = truth.expected_approx(params.levels);
    if report.approx != approx {
        return Err(format!(
            "approx {:?} != expected block sums {:?}",
            report.approx, approx
        ));
    }
    if report.details.len() > params.topk {
        return Err(format!(
            "{} details exceed the top-k budget {}",
            report.details.len(),
            params.topk
        ));
    }
    let coeffs = truth.coefficients(params.levels);
    let effective = truth.effective_levels(params.levels);
    let mut seen = std::collections::BTreeSet::new();
    for d in &report.details {
        if d.level >= effective {
            return Err(format!(
                "detail at level {} beyond effective depth {effective}",
                d.level
            ));
        }
        let row = &coeffs.details[d.level as usize];
        let Some(&exact) = row.get(d.idx as usize) else {
            return Err(format!(
                "detail index {} out of range at level {} (len {})",
                d.idx,
                d.level,
                row.len()
            ));
        };
        if d.val != exact {
            return Err(format!(
                "detail ({}, {}) value {} != exact coefficient {exact}",
                d.level, d.idx, d.val
            ));
        }
        if d.val == 0 {
            return Err(format!("zero detail retained at ({}, {})", d.level, d.idx));
        }
        if !seen.insert((d.level, d.idx)) {
            return Err(format!("duplicate detail ({}, {})", d.level, d.idx));
        }
    }

    let err = truth.report_sq_error(report);
    let optimal = truth.optimal_sq_error(params.levels, params.topk);
    let total = truth.total_detail_energy(params.levels);
    let eps = 1e-6 * (1.0 + total);
    match params.selector {
        SelectorKind::Ideal => {
            if (err - optimal).abs() > eps {
                return Err(format!(
                    "ideal selector error {err} != optimal k-term error {optimal} (eps {eps})"
                ));
            }
        }
        SelectorKind::HwThreshold { .. } => {
            if err < optimal - eps {
                return Err(format!(
                    "error {err} beats the optimal k-term error {optimal} — impossible"
                ));
            }
            if err > total + eps {
                return Err(format!(
                    "error {err} exceeds the keep-nothing bound {total}"
                ));
            }
        }
    }
    Ok(())
}

/// A faithful replay of [`wavesketch::WaveBucket`]'s counting rules onto a
/// dense array: same epoch start, same straggler folding (a late packet is
/// counted in the currently open window), same capacity rollover.
#[derive(Debug, Clone)]
struct BucketSim {
    max_windows: usize,
    w0: Option<u64>,
    counts: Vec<i64>,
    sealed: Vec<EpochTruth>,
}

impl BucketSim {
    fn new(max_windows: usize) -> Self {
        Self {
            max_windows,
            w0: None,
            counts: Vec::new(),
            sealed: Vec::new(),
        }
    }

    fn update(&mut self, window: u64, value: i64) {
        let Some(w0) = self.w0 else {
            self.w0 = Some(window);
            self.counts = vec![value];
            return;
        };
        let offset = window.saturating_sub(w0);
        if offset >= self.max_windows as u64 {
            self.seal();
            self.w0 = Some(window);
            self.counts = vec![value];
            return;
        }
        let o = offset as usize;
        let open = self.counts.len() - 1;
        if o <= open {
            // Same window or a straggler: folded into the open window.
            self.counts[open] += value;
        } else {
            self.counts.resize(o, 0);
            self.counts.push(value);
        }
    }

    fn seal(&mut self) {
        if let Some(w0) = self.w0.take() {
            self.sealed.push(EpochTruth {
                w0,
                counts: std::mem::take(&mut self.counts),
            });
        }
    }

    /// All epochs a drain at this point would produce (sealed + open).
    fn epochs(&self) -> Vec<EpochTruth> {
        let mut out = self.sealed.clone();
        if let Some(w0) = self.w0 {
            out.push(EpochTruth {
                w0,
                counts: self.counts.clone(),
            });
        }
        out
    }
}

/// The exact ground truth of one packet stream under one sketch placement.
pub struct Oracle {
    config: SketchConfig,
    flows: BTreeMap<FlowKey, BucketSim>,
    cells: BTreeMap<(u32, u32), BucketSim>,
    /// Updates recorded so far.
    pub updates: u64,
}

impl Oracle {
    /// An empty oracle for the given (global, unsliced) configuration.
    pub fn new(config: SketchConfig) -> Self {
        Self {
            config,
            flows: BTreeMap::new(),
            cells: BTreeMap::new(),
            updates: 0,
        }
    }

    /// The configuration the oracle mirrors.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// Records one update, mirroring it into the flow's dedicated truth and
    /// into every light cell the sketch would touch.
    pub fn record(&mut self, flow: &FlowKey, window: u64, value: i64) {
        let mw = self.config.max_windows;
        self.flows
            .entry(*flow)
            .or_insert_with(|| BucketSim::new(mw))
            .update(window, value);
        for row in 0..self.config.rows {
            let col = self.config.light_col(flow, row) as u32;
            self.cells
                .entry((row as u32, col))
                .or_insert_with(|| BucketSim::new(mw))
                .update(window, value);
        }
        self.updates += 1;
    }

    /// Every flow the oracle has seen.
    pub fn flows(&self) -> Vec<FlowKey> {
        self.flows.keys().copied().collect()
    }

    /// The flow's dense epochs as a drain right now would seal them.
    pub fn flow_epochs(&self, flow: &FlowKey) -> Vec<EpochTruth> {
        self.flows.get(flow).map(|s| s.epochs()).unwrap_or_default()
    }

    /// The flow's exact total volume.
    pub fn flow_total(&self, flow: &FlowKey) -> i64 {
        self.flow_epochs(flow).iter().map(EpochTruth::total).sum()
    }

    /// Dense epochs of every touched light cell.
    pub fn cell_epochs(&self) -> BTreeMap<(u32, u32), Vec<EpochTruth>> {
        self.cells
            .iter()
            .map(|(&cell, sim)| (cell, sim.epochs()))
            .collect()
    }

    /// Checks a drained flow-bucket report list (one collision-free bucket
    /// per flow, as the Streaming variant keeps) against the flow's truth.
    pub fn check_flow_reports(
        &self,
        flow: &FlowKey,
        reports: &[BucketReport],
        params: &CheckParams,
    ) -> Result<(), String> {
        let truths = self.flow_epochs(flow);
        check_report_list(&truths, reports, params).map_err(|e| format!("flow {flow:?}: {e}"))
    }

    /// Checks a full light-part drain against the truth of every cell:
    /// the drained cell set must equal the set of touched cells exactly, and
    /// every epoch report must pass [`check_epoch_report`]. Returns the
    /// number of epoch reports validated.
    pub fn check_light_drain(
        &self,
        light: &[(u32, u32, Vec<BucketReport>)],
        params: &CheckParams,
    ) -> Result<usize, String> {
        let truth = self.cell_epochs();
        let mut drained: BTreeMap<(u32, u32), &Vec<BucketReport>> = BTreeMap::new();
        for (row, col, reports) in light {
            if drained.insert((*row, *col), reports).is_some() {
                return Err(format!("cell ({row}, {col}) drained twice"));
            }
        }
        if let Some(cell) = truth.keys().find(|c| !drained.contains_key(c)) {
            return Err(format!("touched cell {cell:?} missing from the drain"));
        }
        if let Some(cell) = drained.keys().find(|c| !truth.contains_key(c)) {
            return Err(format!("untouched cell {cell:?} present in the drain"));
        }
        let mut checked = 0;
        for (cell, truths) in &truth {
            let reports = drained[cell];
            check_report_list(truths, reports, params)
                .map_err(|e| format!("cell {cell:?}: {e}"))?;
            checked += reports.len();
        }
        Ok(checked)
    }
}

fn check_report_list(
    truths: &[EpochTruth],
    reports: &[BucketReport],
    params: &CheckParams,
) -> Result<(), String> {
    if truths.len() != reports.len() {
        return Err(format!(
            "{} epoch reports, expected {} (w0s {:?} vs {:?})",
            reports.len(),
            truths.len(),
            reports.iter().map(|r| r.w0).collect::<Vec<_>>(),
            truths.iter().map(|t| t.w0).collect::<Vec<_>>(),
        ));
    }
    for (i, (truth, report)) in truths.iter().zip(reports).enumerate() {
        check_epoch_report(truth, report, params).map_err(|e| format!("epoch {i}: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesketch::{SelectorKind, WaveBucket};

    fn params(levels: u32, topk: usize) -> CheckParams {
        CheckParams {
            levels,
            topk,
            selector: SelectorKind::Ideal,
        }
    }

    #[test]
    fn bucket_sim_matches_wave_bucket_epochs() {
        // Stragglers, same-window folds and capacity rollover in one stream.
        let pattern = [
            (100u64, 10i64),
            (100, 5),
            (103, 7),
            (102, 2), // straggler: folds into window 103
            (110, 1),
            (300, 9), // beyond max_windows=128 → rollover
            (301, 4),
        ];
        let mut sim = BucketSim::new(128);
        let mut bucket = WaveBucket::with_params(4, 128, 256, SelectorKind::Ideal);
        for (w, v) in pattern {
            sim.update(w, v);
            bucket.update(w, v);
        }
        sim.seal();
        let truths = sim.sealed;
        let reports = bucket.drain();
        assert_eq!(truths.len(), 2);
        check_report_list(&truths, &reports, &params(4, 256)).unwrap();
        assert_eq!(truths[0].counts[0], 15);
        assert_eq!(truths[0].counts[3], 9); // 7 + straggler 2
    }

    #[test]
    fn optimal_error_is_achieved_by_ideal_topk() {
        let truth = EpochTruth {
            w0: 0,
            counts: vec![5, 9, 1, 0, 0, 44, 3, 3, 7, 0, 0, 0, 2],
        };
        for k in 1..8 {
            let mut bucket = WaveBucket::with_params(3, 16, k, SelectorKind::Ideal);
            for (w, &v) in truth.counts.iter().enumerate() {
                if v != 0 {
                    bucket.update(w as u64, v);
                }
            }
            // Zero-valued windows between packets are implicit; the dense
            // truth and the bucket agree on them.
            let reports = bucket.drain();
            assert_eq!(reports.len(), 1);
            let err = truth.report_sq_error(&reports[0]);
            let optimal = truth.optimal_sq_error(3, k);
            assert!(
                (err - optimal).abs() < 1e-9,
                "k={k}: err {err} vs optimal {optimal}"
            );
        }
    }

    #[test]
    fn check_rejects_corrupted_fields() {
        let truth = EpochTruth {
            w0: 10,
            counts: vec![4, 0, 9, 1],
        };
        let mut bucket = WaveBucket::with_params(2, 8, 8, SelectorKind::Ideal);
        for (o, &v) in truth.counts.iter().enumerate() {
            if v != 0 {
                bucket.update(10 + o as u64, v);
            }
        }
        let good = bucket.drain().remove(0);
        let p = params(2, 8);
        check_epoch_report(&truth, &good, &p).unwrap();

        let mut bad = good.clone();
        bad.approx[0] += 1;
        assert!(check_epoch_report(&truth, &bad, &p).is_err());

        let mut bad = good.clone();
        bad.w0 += 1;
        assert!(check_epoch_report(&truth, &bad, &p).is_err());

        let mut bad = good.clone();
        bad.details[0].val += 1;
        assert!(check_epoch_report(&truth, &bad, &p).is_err());
    }
}
