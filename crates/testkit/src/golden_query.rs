//! Golden *query* fixtures: frozen analyzer curve outputs from fixed seeds,
//! checked into `tests/golden/` as JSON.
//!
//! Where [`crate::golden`] pins the drain (write-path) output, these
//! fixtures pin the *read* path: `Analyzer::flow_curve` and
//! `Analyzer::host_rate_curve` over a seeded multi-host, multi-period run,
//! ingested in a deliberately hostile order (reversed, then fully
//! redelivered) so the fixtures also freeze the dedup/out-of-order ingest
//! behavior. Curve values are stored as raw `f64` bit patterns
//! ([`f64::to_bits`]) — JSON float round-tripping must not be able to hide a
//! last-ulp divergence.
//!
//! The fixtures were generated from the pre-index, pre-sparse-kernel query
//! path (linear rescans + dense inverse Haar) via `golden_gen`; the indexed
//! query engine must reproduce them bit for bit. They must never be
//! regenerated from code whose curves are not already known to be
//! bit-identical to that implementation.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use umon::{Analyzer, HostAgent, HostAgentConfig, PeriodReport};
use wavesketch::basic::WindowSeries;
use wavesketch::{SelectorKind, SketchConfig};

/// The fixed seeds the query-fixture set covers (selector kind alternates by
/// parity, as in [`crate::golden`]).
pub const QUERY_SEEDS: [u64; 4] = [3, 6, 11, 20];

/// Hosts per fixture run.
pub const QUERY_HOSTS: usize = 3;

/// Flow-id space per host; every id in `0..QUERY_FLOWS` is queried, hit or
/// miss, so "no evidence → `None`" is pinned too.
pub const QUERY_FLOWS: u64 = 24;

const WINDOW_SHIFT: u32 = 13;
const START_WINDOW: u64 = 1000;
const WINDOWS: u64 = 300;
const WINDOWS_PER_PERIOD: u64 = 96;

/// Repo-relative fixture file name for `seed`.
pub fn query_fixture_name(seed: u64) -> String {
    format!("query_curves_seed{seed:02}.json")
}

/// The deterministic host-agent configuration for `seed`. 300 windows over
/// 96-window periods and `max_windows = 256` force both period splits and a
/// mid-period epoch rollover; 8 heavy rows over a skewed flow mix keep the
/// heavy part contested (elections, evictions, partial opening windows).
pub fn query_agent_config(seed: u64) -> HostAgentConfig {
    let selector = if seed.is_multiple_of(2) {
        SelectorKind::HwThreshold { even: 4, odd: 4 }
    } else {
        SelectorKind::Ideal
    };
    HostAgentConfig {
        sketch: SketchConfig::builder()
            .rows(3)
            .width(32)
            .levels(5)
            .topk(17)
            .max_windows(256)
            .heavy_rows(8)
            .selector(selector)
            .seed(0x5EED ^ seed)
            .build(),
        period_ns: WINDOWS_PER_PERIOD << WINDOW_SHIFT,
        window_shift: WINDOW_SHIFT,
    }
}

/// The deterministic per-host period reports for `seed`: a skewed
/// elephants-and-mice mix so a handful of flows win heavy slots while the
/// rest stay light-only (covering both query paths and the subtraction).
pub fn query_reports(seed: u64) -> (HostAgentConfig, Vec<PeriodReport>) {
    let cfg = query_agent_config(seed);
    let mut reports = Vec::new();
    for host in 0..QUERY_HOSTS {
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ (host as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut agent = HostAgent::new(host, cfg.clone());
        for w in 0..WINDOWS {
            let window = START_WINDOW + w;
            let n = rng.gen_range(0..=6u32);
            for _ in 0..n {
                let flow = if rng.gen_bool(0.6) {
                    rng.gen_range(0..QUERY_FLOWS / 6)
                } else {
                    rng.gen_range(0..QUERY_FLOWS)
                };
                let bytes = rng.gen_range(64..9000u32);
                agent.observe(flow, window << WINDOW_SHIFT, bytes);
            }
        }
        reports.extend(agent.finish());
    }
    (cfg, reports)
}

/// Builds the fixture analyzer for `seed`: reports ingested reversed first,
/// then redelivered in the original order — every period arrives out of
/// order once and as a duplicate once, so the frozen curves also pin the
/// ingest plane's dedup and reorder handling.
pub fn query_analyzer(seed: u64) -> Analyzer {
    let (cfg, reports) = query_reports(seed);
    let mut analyzer = Analyzer::new(cfg.sketch.clone());
    let reversed: Vec<PeriodReport> = reports.iter().rev().cloned().collect();
    let accepted = analyzer.add_reports(reversed).accepted;
    let redelivered = analyzer.add_reports(reports);
    assert_eq!(redelivered.accepted, 0, "every redelivery must dedup");
    assert!(accepted > 0, "fixture workload produced no reports");
    analyzer
}

/// One frozen curve: anchor window plus raw `f64` bit patterns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CurveBits {
    /// Absolute window id of the first value.
    pub start_window: u64,
    /// `f64::to_bits` of every value, in order.
    pub bits: Vec<u64>,
}

impl CurveBits {
    /// Freezes a reconstructed series.
    pub fn from_series(s: &WindowSeries) -> Self {
        Self {
            start_window: s.start_window,
            bits: s.values.iter().map(|v| v.to_bits()).collect(),
        }
    }
}

/// All frozen curves of one host.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostCurves {
    /// The host id.
    pub host: usize,
    /// `host_rate_curve(host)`.
    pub rate: Option<CurveBits>,
    /// `flow_curve(host, flow)` for every flow in `0..QUERY_FLOWS`.
    pub flows: Vec<(u64, Option<CurveBits>)>,
}

/// One seed's complete query fixture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryFixture {
    /// Generating seed.
    pub seed: u64,
    /// Per-host frozen curves.
    pub hosts: Vec<HostCurves>,
}

/// Runs the seed's workload end to end and freezes every query output.
pub fn query_fixture(seed: u64) -> QueryFixture {
    let analyzer = query_analyzer(seed);
    let hosts = (0..QUERY_HOSTS)
        .map(|host| HostCurves {
            host,
            rate: analyzer
                .host_rate_curve(host)
                .map(|s| CurveBits::from_series(&s)),
            flows: (0..QUERY_FLOWS)
                .map(|flow| {
                    (
                        flow,
                        analyzer
                            .flow_curve(host, flow)
                            .map(|s| CurveBits::from_series(&s)),
                    )
                })
                .collect(),
        })
        .collect();
    QueryFixture { seed, hosts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_workload_exercises_both_query_paths() {
        let fixture = query_fixture(QUERY_SEEDS[0]);
        assert_eq!(fixture.hosts.len(), QUERY_HOSTS);
        for h in &fixture.hosts {
            let rate = h.rate.as_ref().expect("every host saw traffic");
            assert!(!rate.bits.is_empty());
            let hits = h.flows.iter().filter(|(_, c)| c.is_some()).count();
            assert!(hits > 0, "host {} reconstructed no flows", h.host);
        }
    }

    #[test]
    fn fixture_generation_is_deterministic() {
        for &seed in &QUERY_SEEDS[..2] {
            assert_eq!(query_fixture(seed), query_fixture(seed), "seed {seed}");
        }
    }

    #[test]
    fn heavy_part_is_contested_in_fixture_workloads() {
        let (_, reports) = query_reports(QUERY_SEEDS[0]);
        let heavy_epochs: usize = reports.iter().map(|r| r.report.heavy.len()).sum();
        assert!(heavy_epochs > 0, "no heavy elections — fixture too tame");
    }
}
