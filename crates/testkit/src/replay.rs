//! Trace replay into the harness: drive a real [`umon::HostAgent`] with
//! `netsim` TX records (straight from a simulation tap or parsed back from a
//! trace CSV) and validate every uploaded period report against a per-period
//! oracle.
//!
//! The host agent drains its sketch at every period boundary, so periods are
//! independent: the oracle replays each period's records into a fresh truth
//! and holds the period's light part to it. Two extra whole-report checks
//! ride along: the configuration fingerprint must match, and — because
//! approximation coefficients are exact block sums — the light part's row-0
//! totals must equal the period's exact byte count.

use std::collections::BTreeMap;

use umon::{HostAgent, HostAgentConfig};
use umon_netsim::TxRecord;
use wavesketch::FlowKey;

use crate::oracle::{CheckParams, Oracle};

/// Coverage counters from one replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Period reports validated.
    pub periods: usize,
    /// Light-cell epoch reports validated against per-period oracles.
    pub light_epochs: usize,
    /// Records the host observed.
    pub records: usize,
}

/// Feeds `records` (non-decreasing timestamps) for `host` through a
/// [`HostAgent`] and validates every uploaded report. Returns coverage
/// counters or the first violated invariant.
pub fn replay_host_records(
    records: &[TxRecord],
    host: usize,
    cfg: &HostAgentConfig,
) -> Result<ReplayStats, String> {
    let mut agent = HostAgent::new(host, cfg.clone());
    agent.ingest(records);
    let reports = agent.finish();

    let mut by_period: BTreeMap<u64, Vec<&TxRecord>> = BTreeMap::new();
    for r in records.iter().filter(|r| r.host == host) {
        by_period
            .entry(r.ts_ns / cfg.period_ns)
            .or_default()
            .push(r);
    }
    if reports.len() != by_period.len() {
        return Err(format!(
            "{} period reports for {} periods with traffic",
            reports.len(),
            by_period.len()
        ));
    }

    let fingerprint = cfg.sketch.fingerprint();
    let params = CheckParams::from_config(&cfg.sketch);
    let mut stats = ReplayStats::default();
    for report in &reports {
        if report.config_fingerprint != fingerprint {
            return Err(format!(
                "period {}: fingerprint {:#x} != config's {fingerprint:#x}",
                report.period, report.config_fingerprint
            ));
        }
        if report.host != host {
            return Err(format!(
                "period {}: wrong host {}",
                report.period, report.host
            ));
        }
        let recs = by_period
            .get(&report.period)
            .ok_or_else(|| format!("report for idle period {}", report.period))?;

        let mut oracle = Oracle::new(cfg.sketch.clone());
        let mut bytes = 0i64;
        for r in recs {
            let window = r.ts_ns >> cfg.window_shift;
            oracle.record(&FlowKey::from_id(r.flow.0), window, r.bytes as i64);
            bytes += r.bytes as i64;
        }
        stats.records += recs.len();
        stats.light_epochs += oracle
            .check_light_drain(&report.report.light, &params)
            .map_err(|e| format!("period {}: {e}", report.period))?;

        let row0: i64 = report
            .report
            .light
            .iter()
            .filter(|(row, _, _)| *row == 0)
            .flat_map(|(_, _, rs)| rs.iter())
            .map(|r| r.total())
            .sum();
        if row0 != bytes {
            return Err(format!(
                "period {}: row-0 light total {row0} != exact byte count {bytes}",
                report.period
            ));
        }
        stats.periods += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use umon_netsim::FlowId;
    use wavesketch::SketchConfig;

    fn small_config() -> HostAgentConfig {
        HostAgentConfig {
            sketch: SketchConfig::builder()
                .rows(2)
                .width(16)
                .levels(4)
                .topk(16)
                .max_windows(64)
                .heavy_rows(8)
                .build(),
            period_ns: 1_000_000,
            window_shift: 13,
        }
    }

    fn records() -> Vec<TxRecord> {
        (0..600u64)
            .map(|i| TxRecord {
                host: 1,
                flow: FlowId(i % 9),
                ts_ns: i * 7_000,
                bytes: 200 + (i % 13) as u32 * 64,
            })
            .collect()
    }

    #[test]
    fn replay_validates_multi_period_reports() {
        let stats = replay_host_records(&records(), 1, &small_config()).unwrap();
        assert!(
            stats.periods >= 4,
            "expected several periods, got {}",
            stats.periods
        );
        assert!(stats.light_epochs > 0);
        assert_eq!(stats.records, 600);
    }

    #[test]
    fn replay_ignores_other_hosts() {
        let mut recs = records();
        recs.push(TxRecord {
            host: 2,
            flow: FlowId(1),
            ts_ns: 4_500_000,
            bytes: 999,
        });
        let stats = replay_host_records(&recs, 1, &small_config()).unwrap();
        assert_eq!(stats.records, 600);
    }
}
