//! Differential-testing harness for the WaveSketch family.
//!
//! The crate provides three layers, each usable on its own:
//!
//! * [`Oracle`] — an exact ground truth. It replays the same packet stream a
//!   sketch sees into dense per-flow and per-bucket window counters using the
//!   bucket's own epoch rules, then derives the exact unnormalized Haar
//!   coefficients ([`wavesketch::haar`]) and the unique optimal k-term
//!   squared reconstruction error (Appendix A/B). Any drained report can be
//!   checked against it field by field.
//! * [`gen_stream`] — a seeded, deterministic packet-stream generator with
//!   three workload shapes ([`StreamKind`]): uniform background traffic,
//!   a skewed elephants-and-mice mix, and bursty incast with idle gaps.
//! * [`diff_run`] — the differential fuzzer step. One call drives the Basic,
//!   Full, HW-selector, Streaming (per-flow bucket) and Sharded variants over
//!   the same generated stream and asserts the cross-variant and
//!   vs-oracle invariants listed in DESIGN.md §8. Every failure carries the
//!   seed, so `cargo run -p umon-testkit --bin diff_fuzz -- --seeds 1
//!   --start <seed>` reproduces it exactly.
//!
//! [`collection_diff_run`] extends the differential idea to the collection
//! plane: one seed → one workload measured by a real host agent → the same
//! period reports replayed over lossless, lossy and retransmission-healed
//! transports, asserting the `umon::collector` degradation contract against
//! a fault log that records exactly what the network did.
//!
//! [`retention_diff_run`], [`retention_soak_run`] and [`cold_soak_run`]
//! cover the analyzer's bounded-memory retention tiers, the crash-safe
//! period archive and the queryable cold tier on top of it: compaction,
//! crash/recovery and eviction-to-archive must all be bit-invisible to
//! queries (evicted periods are read back from disk), backfill over the
//! collection plane must heal torn segment tails, and a long bounded run
//! must hold resident state under the budget (DESIGN.md §12, §14).
//!
//! [`sim_equivalence_run`] turns the parallel simulator's determinism
//! promise into a differential: one seed's workload run sequentially and at
//! several partition counts must serialize to byte-identical full traces
//! and drain bit-identical host reports (DESIGN.md §16).
//!
//! [`replay_host_records`] closes the loop with the simulator: it feeds
//! `netsim` TX records (e.g. parsed back from a trace CSV) through a real
//! [`umon::HostAgent`] and validates every uploaded period report against a
//! per-period oracle.

pub mod diff;
pub mod faults;
pub mod golden;
pub mod golden_query;
pub mod oracle;
pub mod replay;
pub mod retention;
pub mod sim_equivalence;
pub mod stream;

pub use diff::{batch_burst_from_env, diff_run, DiffConfig, DiffError, DiffStats};
pub use faults::{collection_diff_run, flow_id_of, CollectionDiffConfig, CollectionDiffStats};
pub use oracle::{CheckParams, EpochTruth, Oracle};
pub use replay::{replay_host_records, ReplayStats};
pub use retention::{
    cold_soak_run, retention_diff_run, retention_soak_run, RetentionDiffConfig, RetentionDiffStats,
    RetentionSoakStats,
};
pub use sim_equivalence::{sim_equivalence_run, SimEquivalenceConfig, SimEquivalenceStats};
pub use stream::{
    gen_stream, scale_values, shuffle_within_windows, StreamConfig, StreamKind, Update,
};
