//! Deterministic fault schedules for the collection plane, and the
//! collection-plane differential step.
//!
//! One [`collection_diff_run`] call drives a generated workload through a
//! real [`umon::HostAgent`], then replays the resulting period reports over
//! three transport scenarios and asserts the degradation contract of
//! `umon::collector` against a lossless reference:
//!
//! 1. **Zero-loss faults are invisible** — under duplication + reordering
//!    (no drops, no damage) the analyzer's curves and coverage are
//!    bit-identical to a run that never saw a transport at all.
//! 2. **Loss degrades soundly** — under drops with no retransmission, the
//!    analyzer state equals a reference fed exactly the surviving reports
//!    (the fault log says which), and the detected gaps are exactly the
//!    dropped sequence numbers below the highest delivered one.
//! 3. **Retransmission recovers fully** — under a mixed drop / duplicate /
//!    reorder / truncate / ACK-loss schedule, a bounded-buffer
//!    [`umon::HostUplink`] with exponential backoff eventually restores
//!    bit-identity with the lossless run.
//!
//! Every failure carries the seed and workload, like [`crate::diff_run`].

use umon::{
    Analyzer, Collector, Envelope, FaultSpec, FaultyTransport, HostAgent, HostAgentConfig,
    HostUplink, PeriodReport, RetransmitPolicy, Transport,
};
use wavesketch::{FlowKey, SelectorKind, SketchConfig};

use crate::diff::DiffError;
use crate::stream::{gen_stream, StreamConfig, StreamKind};

/// Everything one collection-plane differential run needs.
#[derive(Debug, Clone)]
pub struct CollectionDiffConfig {
    /// Host-agent configuration (sketch + period geometry).
    pub agent: HostAgentConfig,
    /// Stream shape.
    pub stream: StreamConfig,
    /// Fault rates for the zero-loss scenario (drop and truncate forced 0).
    pub lossless_faults: FaultSpec,
    /// Drop rate for the no-retransmit loss scenario.
    pub loss_rate: f64,
    /// Fault rates for the retransmission-recovery scenario.
    pub recovery_faults: FaultSpec,
    /// Tick budget for the recovery scenario.
    pub recovery_ticks: u64,
    /// How many flow curves to compare per scenario.
    pub query_sample: usize,
}

impl CollectionDiffConfig {
    /// A configuration sized for debug-build suites: ~19 upload periods,
    /// heavy and light flows, aggressive fault rates.
    pub fn quick(kind: StreamKind) -> Self {
        Self {
            agent: HostAgentConfig {
                sketch: SketchConfig::builder()
                    .rows(3)
                    .width(32)
                    .levels(5)
                    .topk(17)
                    .max_windows(256)
                    .heavy_rows(16)
                    .selector(SelectorKind::Ideal)
                    .build(),
                period_ns: 16 << 13, // 16 windows per upload period
                window_shift: 13,
            },
            stream: StreamConfig {
                kind,
                flows: 40,
                windows: 300,
                start_window: 1000,
                mean_packets: 3,
            },
            lossless_faults: FaultSpec {
                duplicate: 0.3,
                reorder: 0.3,
                ..FaultSpec::NONE
            },
            loss_rate: 0.4,
            recovery_faults: FaultSpec {
                drop: 0.25,
                duplicate: 0.15,
                reorder: 0.15,
                truncate: 0.15,
                ack_drop: 0.25,
            },
            recovery_ticks: 5000,
            query_sample: 12,
        }
    }
}

/// What a successful collection-plane run covered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectionDiffStats {
    /// Period reports the host agent produced.
    pub reports: usize,
    /// Envelope duplicates delivered across scenarios.
    pub duplicates: u64,
    /// Reports dropped in the loss scenario.
    pub dropped: u64,
    /// Sequence gaps the collector flagged in the loss scenario.
    pub gaps: usize,
    /// Retransmissions needed in the recovery scenario.
    pub retransmissions: u64,
    /// Curve comparisons performed.
    pub curves_compared: usize,
}

/// Inverts [`FlowKey::from_id`], recovering the dense id the generators use.
pub fn flow_id_of(key: &FlowKey) -> u64 {
    let mut b = [0u8; 8];
    b[0..3].copy_from_slice(&key.src_ip[1..4]);
    b[3..6].copy_from_slice(&key.dst_ip[1..4]);
    b[6..8].copy_from_slice(&key.src_port.to_le_bytes());
    u64::from_le_bytes(b)
}

/// Runs the collection-plane differential step for one seed.
pub fn collection_diff_run(
    seed: u64,
    cfg: &CollectionDiffConfig,
) -> Result<CollectionDiffStats, DiffError> {
    let fail = |detail: String| DiffError {
        seed,
        kind: cfg.stream.kind,
        detail,
    };
    let mut stats = CollectionDiffStats::default();

    // Generate the workload and measure it once.
    let stream = gen_stream(seed, &cfg.stream);
    let mut agent = HostAgent::new(0, cfg.agent.clone());
    let mut flow_ids: Vec<u64> = Vec::new();
    for (f, w, v) in &stream {
        let id = flow_id_of(f);
        if !flow_ids.contains(&id) {
            flow_ids.push(id);
        }
        agent.observe(id, *w << cfg.agent.window_shift, *v as u32);
    }
    let reports = agent.finish();
    if reports.is_empty() {
        return Err(fail("workload produced no reports".into()));
    }
    stats.reports = reports.len();
    let n = reports.len() as u64;
    flow_ids.truncate(cfg.query_sample);

    // The lossless reference every scenario is measured against.
    let mut reference = Analyzer::new(cfg.agent.sketch.clone());
    reference.add_reports(reports.clone());

    let compare = |a: &Analyzer, b: &Analyzer, scenario: &str| -> Result<usize, DiffError> {
        let mut compared = 0;
        for &id in &flow_ids {
            if a.flow_curve(0, id) != b.flow_curve(0, id) {
                return Err(fail(format!(
                    "{scenario}: flow {id} curve differs from the reference"
                )));
            }
            compared += 1;
        }
        if a.host_rate_curve(0) != b.host_rate_curve(0) {
            return Err(fail(format!(
                "{scenario}: host rate curve differs from the reference"
            )));
        }
        Ok(compared + 1)
    };

    // Scenario 1: duplication + reordering with zero loss must be invisible.
    {
        let mut spec = cfg.lossless_faults;
        spec.drop = 0.0;
        spec.truncate = 0.0;
        let mut transport = FaultyTransport::new(seed ^ 0x1000_F417, spec);
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.agent.sketch.clone());
        for (s, r) in reports.iter().cloned().enumerate() {
            transport.send(Envelope::seal(s as u64, r));
        }
        // Two pumps: envelopes held back for reordering surface by the
        // second deliver.
        collector.pump(&mut transport, &mut analyzer);
        collector.pump(&mut transport, &mut analyzer);
        if collector.stats().accepted != n {
            return Err(fail(format!(
                "zero-loss: accepted {} of {n} reports",
                collector.stats().accepted
            )));
        }
        if collector.stats().duplicates != transport.log(0).duplicated {
            return Err(fail(format!(
                "zero-loss: {} duplicates counted, transport injected {}",
                collector.stats().duplicates,
                transport.log(0).duplicated
            )));
        }
        if !collector.missing_seqs(0).is_empty() {
            return Err(fail("zero-loss: phantom sequence gaps".into()));
        }
        if !analyzer.host_coverage(0).is_complete() {
            return Err(fail("zero-loss: coverage reports losses".into()));
        }
        stats.duplicates += collector.stats().duplicates;
        stats.curves_compared += compare(&analyzer, &reference, "zero-loss")?;
    }

    // Scenario 2: drops without retransmission — sound on what survived.
    {
        let spec = FaultSpec {
            drop: cfg.loss_rate,
            ..FaultSpec::NONE
        };
        let mut transport = FaultyTransport::new(seed ^ 0x2000_F417, spec);
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.agent.sketch.clone());
        for (s, r) in reports.iter().cloned().enumerate() {
            transport.send(Envelope::seal(s as u64, r));
        }
        collector.pump(&mut transport, &mut analyzer);

        let log = transport.log(0);
        stats.dropped = log.dropped;
        // The analyzer must equal a reference fed exactly the survivors.
        let survivors: Vec<PeriodReport> = reports
            .iter()
            .enumerate()
            .filter(|(s, _)| !log.dropped_seqs.contains(&(*s as u64)))
            .map(|(_, r)| r.clone())
            .collect();
        if collector.stats().accepted != survivors.len() as u64 {
            return Err(fail(format!(
                "loss: accepted {} but {} survived",
                collector.stats().accepted,
                survivors.len()
            )));
        }
        let mut surviving_ref = Analyzer::new(cfg.agent.sketch.clone());
        surviving_ref.add_reports(survivors);
        stats.curves_compared += compare(&analyzer, &surviving_ref, "loss")?;
        // Gaps are exactly the dropped seqs below the delivered maximum.
        let delivered_max = (0..log.sent)
            .filter(|s| !log.dropped_seqs.contains(s))
            .max();
        let expect: Vec<u64> = match delivered_max {
            None => Vec::new(),
            Some(m) => log
                .dropped_seqs
                .iter()
                .copied()
                .filter(|&s| s < m)
                .collect(),
        };
        let missing = collector.missing_seqs(0);
        if missing != expect {
            return Err(fail(format!(
                "loss: collector flagged gaps {missing:?}, fault log says {expect:?}"
            )));
        }
        stats.gaps = missing.len();
        if analyzer.host_coverage(0).known_lost != missing.len() as u64 {
            return Err(fail("loss: coverage known_lost out of sync".into()));
        }
    }

    // Scenario 3: the full hostile mix, healed by bounded retransmission.
    {
        let mut transport = FaultyTransport::new(seed ^ 0x3000_F417, cfg.recovery_faults);
        let mut uplink = HostUplink::new(0, RetransmitPolicy::default());
        let mut collector = Collector::new();
        let mut analyzer = Analyzer::new(cfg.agent.sketch.clone());
        uplink.submit(reports.clone());
        for now in 0..cfg.recovery_ticks {
            uplink.tick(now, &mut transport);
            collector.pump(&mut transport, &mut analyzer);
            if uplink.in_flight() == 0 && collector.stats().accepted == n {
                break;
            }
        }
        if collector.stats().accepted != n || !collector.missing_seqs(0).is_empty() {
            return Err(fail(format!(
                "recovery: {} of {n} reports recovered, gaps {:?} (ticks {})",
                collector.stats().accepted,
                collector.missing_seqs(0),
                cfg.recovery_ticks
            )));
        }
        if uplink.evicted != 0 {
            return Err(fail("recovery: default capacity must not evict".into()));
        }
        stats.retransmissions = uplink.retransmissions;
        stats.duplicates += collector.stats().duplicates;
        stats.curves_compared += compare(&analyzer, &reference, "recovery")?;
        if !analyzer.host_coverage(0).is_complete() {
            return Err(fail("recovery: coverage still reports losses".into()));
        }
    }

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_roundtrips() {
        for id in [0u64, 1, 39, 96, 0xFF_FFFF, 0xFFFF_FFFF_FFFF] {
            assert_eq!(flow_id_of(&FlowKey::from_id(id)), id);
        }
    }

    #[test]
    fn one_smoke_seed_per_workload() {
        for kind in StreamKind::ALL {
            let stats = collection_diff_run(0xC011, &CollectionDiffConfig::quick(kind)).unwrap();
            assert!(stats.reports > 1, "{}: want multiple periods", kind.name());
            assert!(stats.curves_compared > 0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = CollectionDiffConfig::quick(StreamKind::Skewed);
        assert_eq!(
            collection_diff_run(7, &cfg).unwrap(),
            collection_diff_run(7, &cfg).unwrap()
        );
    }
}
