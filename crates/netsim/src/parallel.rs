//! Conservative parallel discrete-event execution: the topology is sharded
//! into logical processes ([`crate::partition`]), each running a private
//! [`Simulator`] over its own nodes, queues, CC state and event wheel, and
//! the processes advance in barrier-synchronized windows.
//!
//! ## Synchronization protocol
//!
//! Classic conservative (Chandy–Misra–Bryant-style) windowing with a global
//! barrier instead of per-channel null messages:
//!
//! 1. Every partition publishes the timestamp of its earliest pending event
//!    and waits at a barrier.
//! 2. Each computes the global floor `F` = min over those timestamps. All
//!    partitions compute the same `F` (the inputs cannot change while any
//!    thread is still between the two barriers).
//! 3. Each dispatches every local event with `time < F + L`, where `L` is
//!    the lookahead — the minimum link latency over cut links. Events bound
//!    for a remote partition are buffered, not sent immediately.
//! 4. Outbound buffers are flushed into per-destination mailboxes; a second
//!    barrier makes them visible; each partition drains its own mailbox into
//!    its event wheel and the round repeats.
//!
//! Safety: an event dispatched in the window has `time ≥ F`, and anything it
//! schedules across a cut link is delayed by that link's latency `≥ L`, so
//! remote work created during the window lands at `time ≥ F + L` — strictly
//! after the window every receiver is processing. No partition can receive
//! an event "in its past".
//!
//! ## Determinism
//!
//! Event priorities are `(creator_counter << NODE_BITS) | creator_node`
//! (see [`crate::sim`] module docs): a creator's counter depends only on its
//! own dispatch sequence, so priorities — and therefore the `(time, prio)`
//! dispatch order — are identical in sequential and parallel runs. Telemetry
//! records are tagged with the `(time, prio)` of the dispatch that produced
//! them and merged by a stable sort, reproducing the sequential record order
//! byte for byte. The merged [`SimResult`] is bit-identical to
//! [`Simulator::run`] for any seed and any partition count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

use crate::partition::{PartitionError, PartitionPlan};
use crate::sim::{FlowSpec, FlowStats, OutboundEvent, SimConfig, SimResult, Simulator};
use crate::telemetry::{QueueLengthDist, TapTags, Telemetry};
use crate::topology::Topology;

/// Runs the simulation partitioned across `num_partitions` OS threads and
/// returns a result bit-identical to `Simulator::new(topo, flows,
/// config).run()`.
///
/// Partitioning follows the topology's locality zones (one per fat-tree pod
/// plus one for the core layer; dumbbell halves). `num_partitions == 1`
/// validates the plan, then runs sequentially on the calling thread.
///
/// # Errors
///
/// [`PartitionError::ZeroLookahead`] if a cut link has zero latency (the
/// conservative window would never advance past a single timestamp), and
/// [`PartitionError::NoPartitions`] for `num_partitions == 0`.
pub fn run_parallel(
    topo: Topology,
    flows: Vec<FlowSpec>,
    config: SimConfig,
    num_partitions: usize,
) -> Result<SimResult, PartitionError> {
    let plan = PartitionPlan::new(&topo, num_partitions)?;
    if num_partitions == 1 {
        return Ok(Simulator::new(topo, flows, config).run());
    }
    let p = plan.num_partitions;
    let plan = Arc::new(plan);
    let topo = Arc::new(topo);
    let lookahead = plan.lookahead_ns;
    let end_ns = config.end_ns;

    let barrier = Barrier::new(p);
    let next_times: Vec<AtomicU64> = (0..p).map(|_| AtomicU64::new(u64::MAX)).collect();
    let last_times: Vec<AtomicU64> = (0..p).map(|_| AtomicU64::new(0)).collect();
    let mailboxes: Vec<Mutex<Vec<OutboundEvent>>> =
        (0..p).map(|_| Mutex::new(Vec::new())).collect();

    let parts: Vec<(SimResult, TapTags)> = thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|id| {
                let topo = Arc::clone(&topo);
                let plan = Arc::clone(&plan);
                let flows = flows.clone();
                let config = config.clone();
                let barrier = &barrier;
                let next_times = &next_times;
                let last_times = &last_times;
                let mailboxes = &mailboxes;
                s.spawn(move || {
                    let mut sim = Simulator::new_partition(topo, flows, config, plan, id);
                    sim.seed_initial_events();
                    let floor_at_break;
                    loop {
                        next_times[id]
                            .store(sim.next_event_time().unwrap_or(u64::MAX), Ordering::Relaxed);
                        barrier.wait();
                        let floor = next_times
                            .iter()
                            .map(|t| t.load(Ordering::Relaxed))
                            .min()
                            .expect("at least one partition");
                        if floor == u64::MAX || floor > end_ns {
                            floor_at_break = floor;
                            break;
                        }
                        sim.process_window(floor.saturating_add(lookahead));
                        sim.flush_outbound(mailboxes);
                        barrier.wait();
                        let mut batch =
                            std::mem::take(&mut *mailboxes[id].lock().expect("mailbox"));
                        sim.deliver(&mut batch);
                    }
                    // Global end time: if events remained past `end_ns`, the
                    // sequential run clamps to `end_ns`; otherwise it stops
                    // at the last dispatched event — the max across
                    // partitions.
                    last_times[id].store(sim.last_dispatch_time(), Ordering::Relaxed);
                    barrier.wait();
                    let global_end = if floor_at_break != u64::MAX {
                        end_ns
                    } else {
                        last_times
                            .iter()
                            .map(|t| t.load(Ordering::Relaxed))
                            .max()
                            .expect("at least one partition")
                    };
                    sim.finish_partition(global_end)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition thread panicked"))
            .collect()
    });

    Ok(merge_results(&plan, parts))
}

/// One tap's worth of per-partition output: the `(now, prio)` dispatch tags
/// alongside the records they label, one pair per partition.
type TaggedParts<T> = Vec<(Vec<(u64, u64)>, Vec<T>)>;

/// Stable-sorts tagged records from all partitions into global dispatch
/// order. Records sharing a tag were born inside the same dispatch (hence
/// the same partition) and keep their relative order.
fn merge_tagged<T>(parts: TaggedParts<T>) -> Vec<T> {
    let mut all: Vec<((u64, u64), T)> = Vec::new();
    for (tags, records) in parts {
        debug_assert_eq!(tags.len(), records.len(), "tag/record count mismatch");
        all.extend(tags.into_iter().zip(records));
    }
    all.sort_by_key(|&(tag, _)| tag);
    all.into_iter().map(|(_, r)| r).collect()
}

/// Reassembles the global [`SimResult`] from per-partition results,
/// reproducing exactly what the sequential simulator would have built.
fn merge_results(plan: &PartitionPlan, parts: Vec<(SimResult, TapTags)>) -> SimResult {
    let mut telemetry = Telemetry::default();
    let mut tx = Vec::new();
    let mut mirror = Vec::new();
    let mut episodes_run = Vec::new();
    let mut episodes_finish = Vec::new();
    let mut pause = Vec::new();
    let mut link = Vec::new();
    let mut drop = Vec::new();
    let mut burst = Vec::new();
    let mut queue_dist: Option<QueueLengthDist> = None;
    let mut events_processed = 0u64;
    let mut per_part_flows: Vec<Vec<FlowStats>> = Vec::with_capacity(parts.len());
    let mut clocks = None;
    let mut end_ns = 0u64;

    for (idx, (result, tags)) in parts.into_iter().enumerate() {
        let SimResult {
            telemetry: t,
            flows,
            clocks: c,
            end_ns: e,
            events_processed: n,
        } = result;
        if idx == 0 {
            clocks = Some(c);
            end_ns = e;
        }
        tx.push((tags.tx, t.tx_records));
        mirror.push((tags.mirror, t.mirror_candidates));
        // The episode vector is run-phase records (tagged, in dispatch
        // order) followed by the finish-phase flush of still-open episodes.
        let mut eps = t.episodes;
        let flushed = eps.split_off(tags.episode.len());
        episodes_run.push((tags.episode, eps));
        episodes_finish.extend(flushed);
        pause.push((tags.pause, t.pause_records));
        link.push((tags.link, t.link_records));
        drop.push((tags.drop, t.drop_records));
        burst.push((tags.burst, t.burst_records));
        if let Some(d) = t.queue_dist {
            match queue_dist.as_mut() {
                Some(acc) => acc.merge(&d),
                None => queue_dist = Some(d),
            }
        }
        telemetry.drops += t.drops;
        telemetry.random_losses += t.random_losses;
        telemetry.link_losses += t.link_losses;
        telemetry.delivered_bytes += t.delivered_bytes;
        telemetry.injected_bytes += t.injected_bytes;
        events_processed += n;
        per_part_flows.push(flows);
    }

    telemetry.tx_records = merge_tagged(tx);
    telemetry.mirror_candidates = merge_tagged(mirror);
    telemetry.pause_records = merge_tagged(pause);
    telemetry.link_records = merge_tagged(link);
    telemetry.drop_records = merge_tagged(drop);
    telemetry.burst_records = merge_tagged(burst);
    // Sequential finish flushes open episodes in (switch, port) order after
    // the last dispatch; each (switch, port) flushes at most once.
    telemetry.episodes = merge_tagged(episodes_run);
    episodes_finish.sort_by_key(|e| (e.switch, e.port));
    telemetry.episodes.extend(episodes_finish);
    telemetry.queue_dist = queue_dist;

    // A flow's sender-side state lives in the partition owning its source
    // host, the receiver side in the one owning its destination.
    let num_flows = per_part_flows.first().map_or(0, Vec::len);
    let flows = (0..num_flows)
        .map(|i| {
            let spec = per_part_flows[0][i].spec;
            let src_side = &per_part_flows[plan.owner(spec.src)][i];
            let dst_side = &per_part_flows[plan.owner(spec.dst)][i];
            FlowStats {
                spec,
                sent_bytes: src_side.sent_bytes,
                delivered_bytes: dst_side.delivered_bytes,
                packets_sent: src_side.packets_sent,
                fct_ns: dst_side.fct_ns,
            }
        })
        .collect();

    SimResult {
        telemetry,
        flows,
        clocks: clocks.expect("at least one partition"),
        end_ns,
        events_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{FailureEvent, FailureSchedule};
    use crate::packet::FlowId;
    use crate::sim::{CongestionControl, PfcConfig};

    fn quick_config() -> SimConfig {
        SimConfig {
            end_ns: 10_000_000,
            clock_error_ns: 0,
            ..SimConfig::default()
        }
    }

    fn fat_tree_flows(n: u64) -> Vec<FlowSpec> {
        (0..n)
            .map(|i| FlowSpec {
                id: FlowId(i),
                src: (i % 8) as usize,
                dst: ((i + 8) % 16) as usize,
                size_bytes: 50_000 + i * 1000,
                start_ns: i * 10_000,
                cc: if i % 3 == 0 {
                    CongestionControl::Dctcp
                } else {
                    CongestionControl::Dcqcn
                },
            })
            .collect()
    }

    /// Everything observable must match: every telemetry vector, every
    /// scalar, flow stats, end time and the event count.
    fn assert_identical(a: &SimResult, b: &SimResult, what: &str) {
        assert_eq!(a.telemetry.tx_records, b.telemetry.tx_records, "{what}: tx");
        assert_eq!(
            a.telemetry.mirror_candidates, b.telemetry.mirror_candidates,
            "{what}: mirror"
        );
        assert_eq!(
            a.telemetry.episodes, b.telemetry.episodes,
            "{what}: episodes"
        );
        assert_eq!(
            a.telemetry.pause_records, b.telemetry.pause_records,
            "{what}: pause"
        );
        assert_eq!(
            a.telemetry.link_records, b.telemetry.link_records,
            "{what}: link"
        );
        assert_eq!(
            a.telemetry.drop_records, b.telemetry.drop_records,
            "{what}: drop"
        );
        assert_eq!(
            a.telemetry.burst_records, b.telemetry.burst_records,
            "{what}: burst"
        );
        assert_eq!(
            a.telemetry.queue_dist.as_ref().map(|d| &d.weight_ns),
            b.telemetry.queue_dist.as_ref().map(|d| &d.weight_ns),
            "{what}: queue dist"
        );
        assert_eq!(a.telemetry.drops, b.telemetry.drops, "{what}: drops");
        assert_eq!(
            a.telemetry.random_losses, b.telemetry.random_losses,
            "{what}: random losses"
        );
        assert_eq!(
            a.telemetry.link_losses, b.telemetry.link_losses,
            "{what}: link losses"
        );
        assert_eq!(
            a.telemetry.delivered_bytes, b.telemetry.delivered_bytes,
            "{what}: delivered"
        );
        assert_eq!(
            a.telemetry.injected_bytes, b.telemetry.injected_bytes,
            "{what}: injected"
        );
        assert_eq!(a.flows, b.flows, "{what}: flows");
        assert_eq!(a.end_ns, b.end_ns, "{what}: end");
        assert_eq!(
            a.events_processed, b.events_processed,
            "{what}: event count"
        );
    }

    #[test]
    fn parallel_is_bit_identical_on_fat_tree_for_any_partition_count() {
        let config = quick_config();
        let seq = Simulator::new(
            Topology::fat_tree(4, 100.0, 1000),
            fat_tree_flows(40),
            config.clone(),
        )
        .run();
        for p in [1, 2, 4, 5] {
            let par = run_parallel(
                Topology::fat_tree(4, 100.0, 1000),
                fat_tree_flows(40),
                config.clone(),
                p,
            )
            .unwrap();
            assert_identical(&par, &seq, &format!("{p} partitions"));
        }
        assert!(seq.telemetry.delivered_bytes > 0, "workload must do work");
    }

    /// PFC pause/resume frames crossing a cut link: a cross-pod incast into
    /// host 0 backs queues up through the pod-0 edge and agg layers into the
    /// core, and the core switches XOFF the aggregation switches of the
    /// *sending* pods — partitions 1..3, across the agg↔core cut links.
    #[test]
    fn pfc_pause_frames_crossing_a_cut_link_stay_deterministic() {
        let mk = || {
            // Unthrottled senders in pods 1..3 (hosts 4..16) all into host
            // 0: fixed-rate keeps the pressure on so the PFC cascade reaches
            // the core instead of DCQCN backing off first.
            let flows = (0..6u64)
                .map(|i| FlowSpec {
                    id: FlowId(i),
                    src: 4 + (i as usize % 12),
                    dst: 0,
                    size_bytes: 2_000_000,
                    start_ns: 0,
                    cc: CongestionControl::FixedRate(100.0),
                })
                .collect::<Vec<_>>();
            let config = SimConfig {
                pfc: Some(PfcConfig {
                    xoff_bytes: 32 * 1024,
                    xon_bytes: 16 * 1024,
                }),
                end_ns: 5_000_000,
                clock_error_ns: 0,
                ..SimConfig::default()
            };
            (Topology::fat_tree(4, 100.0, 1000), flows, config)
        };
        let (topo, flows, config) = mk();
        let seq = Simulator::new(topo, flows, config).run();
        // A core switch (32..36) must have paused an aggregation switch of
        // a sending pod (26..32 — pods 1..3, partitions 1..3) for the test
        // to exercise a pause frame on a cut link.
        assert!(
            seq.telemetry
                .pause_records
                .iter()
                .any(|r| (26..32).contains(&r.node) && (32..36).contains(&r.triggered_by)),
            "incast must push PFC across an agg-core cut link"
        );
        let (topo, flows, config) = mk();
        let par = run_parallel(topo, flows, config, 4).unwrap();
        assert_identical(&par, &seq, "pfc across cut");
    }

    /// LinkFlap and PauseStorm failure events targeting the cut link itself:
    /// the flap's two endpoints dispatch in different partitions, and
    /// packets in flight on the failed link are lost deterministically.
    #[test]
    fn failures_on_the_cut_link_stay_deterministic() {
        let mk = || {
            let flows = (0..4)
                .map(|i| FlowSpec {
                    id: FlowId(i),
                    src: (i % 4) as usize,
                    dst: 4 + ((i + 1) % 4) as usize,
                    size_bytes: 500_000,
                    start_ns: i * 5_000,
                    cc: CongestionControl::Dcqcn,
                })
                .collect::<Vec<_>>();
            let config = SimConfig {
                deflect_on_drop: true,
                failures: FailureSchedule {
                    events: vec![
                        // Node 8 port 4 is the left switch's bottleneck port:
                        // the cut link itself flaps...
                        FailureEvent::LinkFlap {
                            node: 8,
                            port: 4,
                            down_ns: 100_000,
                            up_ns: 300_000,
                        },
                        // ...and later suffers a forced pause storm.
                        FailureEvent::PauseStorm {
                            node: 8,
                            port: 4,
                            start_ns: 500_000,
                            cycles: 3,
                            pause_ns: 20_000,
                            gap_ns: 10_000,
                        },
                    ],
                },
                ..quick_config()
            };
            (Topology::dumbbell(4, 100.0, 1000), flows, config)
        };
        let (topo, flows, config) = mk();
        let seq = Simulator::new(topo, flows, config).run();
        assert!(
            !seq.telemetry.link_records.is_empty(),
            "flap must be recorded"
        );
        assert!(
            seq.telemetry.link_records.iter().any(|r| r.node == 9),
            "the far endpoint of the cut link must also flap"
        );
        let (topo, flows, config) = mk();
        let par = run_parallel(topo, flows, config, 2).unwrap();
        assert_identical(&par, &seq, "failures on cut link");
    }

    /// All taps at once — burst capture, deflect-on-drop, random loss,
    /// queue distributions, imperfect clocks — through the full merge path.
    #[test]
    fn every_tap_survives_the_merge_bit_identically() {
        let mk = || {
            let config = SimConfig {
                burst_capture_threshold: Some(16 * 1024),
                deflect_on_drop: true,
                random_loss_probability: 1e-3,
                clock_error_ns: 100,
                switch_buffer_bytes: 200 * 1024,
                end_ns: 5_000_000,
                ..SimConfig::default()
            };
            (
                Topology::fat_tree(4, 100.0, 1000),
                fat_tree_flows(48),
                config,
            )
        };
        let (topo, flows, config) = mk();
        let seq = Simulator::new(topo, flows, config).run();
        assert!(
            seq.telemetry.random_losses > 0,
            "loss injection must trigger for coverage"
        );
        for p in [2, 4] {
            let (topo, flows, config) = mk();
            let par = run_parallel(topo, flows, config, p).unwrap();
            assert_identical(&par, &seq, &format!("all taps, {p} partitions"));
        }
    }

    #[test]
    fn zero_lookahead_cut_is_rejected_with_a_clear_error() {
        let topo = Topology::dumbbell(1, 100.0, 0);
        let err = run_parallel(topo, Vec::new(), quick_config(), 2).unwrap_err();
        assert!(matches!(err, PartitionError::ZeroLookahead { .. }));
        assert!(err.to_string().contains("lookahead"));
        // The same topology runs fine single-partition.
        let topo = Topology::dumbbell(1, 100.0, 0);
        assert!(run_parallel(topo, Vec::new(), quick_config(), 1).is_ok());
    }

    #[test]
    fn empty_event_population_terminates() {
        let r = run_parallel(
            Topology::fat_tree(4, 100.0, 1000),
            Vec::new(),
            quick_config(),
            4,
        )
        .unwrap();
        assert_eq!(r.events_processed, 0);
        assert_eq!(r.end_ns, 0);
    }
}
