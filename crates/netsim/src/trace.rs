//! Trace export/import: serializes the simulator's telemetry taps to a
//! simple line-oriented CSV so traces can be archived, diffed across runs,
//! or analyzed with external tooling — and reloaded to re-drive the μMon
//! agents without re-simulating.

use crate::packet::FlowId;
use crate::telemetry::{LinkRecord, MirrorCandidate, PauseRecord, Telemetry, TxRecord};
use std::io::{BufRead, Write};

/// Writes TX records as `tx,host,flow,ts_ns,bytes` lines.
pub fn write_tx_records<W: Write>(out: &mut W, records: &[TxRecord]) -> std::io::Result<()> {
    for r in records {
        writeln!(out, "tx,{},{},{},{}", r.host, r.flow.0, r.ts_ns, r.bytes)?;
    }
    Ok(())
}

/// Writes mirror candidates as `ce,switch,port,ts_ns,flow,psn,bytes` lines.
pub fn write_mirror_candidates<W: Write>(
    out: &mut W,
    records: &[MirrorCandidate],
) -> std::io::Result<()> {
    for m in records {
        writeln!(
            out,
            "ce,{},{},{},{},{},{}",
            m.switch, m.port, m.ts_ns, m.flow.0, m.psn, m.bytes
        )?;
    }
    Ok(())
}

/// Writes PFC pause records as `pause,node,port,triggered_by,ts_ns,on`
/// lines (`on` is 1 for XOFF, 0 for XON). Write-only: pause and link lines
/// exist so failure-injection runs serialize to a byte-comparable trace;
/// [`read_trace`] deliberately keeps its tx/ce contract.
pub fn write_pause_records<W: Write>(out: &mut W, records: &[PauseRecord]) -> std::io::Result<()> {
    for p in records {
        writeln!(
            out,
            "pause,{},{},{},{},{}",
            p.node,
            p.port,
            p.triggered_by,
            p.ts_ns,
            u8::from(p.on)
        )?;
    }
    Ok(())
}

/// Writes link state changes as `link,node,port,ts_ns,up` lines (`up` is 1
/// for recovery, 0 for failure).
pub fn write_link_records<W: Write>(out: &mut W, records: &[LinkRecord]) -> std::io::Result<()> {
    for l in records {
        writeln!(
            out,
            "link,{},{},{},{}",
            l.node,
            l.port,
            l.ts_ns,
            u8::from(l.up)
        )?;
    }
    Ok(())
}

/// Writes every telemetry tap in a fixed section order (tx, ce, pause,
/// link, drop, burst) plus the scalar counters as a trailing `sum` line.
/// This is the byte-comparable surface the parallel-vs-sequential
/// equivalence suite diffs: two runs are equivalent iff their full traces
/// are identical bytes.
pub fn write_full_trace<W: Write>(out: &mut W, t: &Telemetry) -> std::io::Result<()> {
    write_tx_records(out, &t.tx_records)?;
    write_mirror_candidates(out, &t.mirror_candidates)?;
    write_pause_records(out, &t.pause_records)?;
    write_link_records(out, &t.link_records)?;
    for d in &t.drop_records {
        writeln!(
            out,
            "drop,{},{},{},{},{},{}",
            d.switch, d.port, d.ts_ns, d.flow.0, d.psn, d.bytes
        )?;
    }
    for b in &t.burst_records {
        writeln!(
            out,
            "burst,{},{},{},{},{}",
            b.switch, b.port, b.ts_ns, b.flow.0, b.qlen_bytes
        )?;
    }
    for e in &t.episodes {
        writeln!(
            out,
            "episode,{},{},{},{},{}",
            e.switch, e.port, e.start_ns, e.end_ns, e.max_qlen
        )?;
    }
    writeln!(
        out,
        "sum,{},{},{},{},{}",
        t.drops, t.random_losses, t.link_losses, t.delivered_bytes, t.injected_bytes
    )
}

/// An error from trace parsing: the line number and a description.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Reads a mixed trace back into `(tx_records, mirror_candidates)`.
/// Unknown record tags are rejected (a trace is a contract, not a log).
pub fn read_trace<R: BufRead>(
    input: R,
) -> Result<(Vec<TxRecord>, Vec<MirrorCandidate>), ParseError> {
    let mut tx = Vec::new();
    let mut ce = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| ParseError {
            line: lineno,
            message: e.to_string(),
        })?;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.trim().split(',').collect();
        let err = |message: &str| ParseError {
            line: lineno,
            message: message.to_string(),
        };
        let num = |s: &str| -> Result<u64, ParseError> {
            s.parse().map_err(|_| err(&format!("bad number {s:?}")))
        };
        match fields.first() {
            Some(&"tx") => {
                if fields.len() != 5 {
                    return Err(err("tx records need 5 fields"));
                }
                tx.push(TxRecord {
                    host: num(fields[1])? as usize,
                    flow: FlowId(num(fields[2])?),
                    ts_ns: num(fields[3])?,
                    bytes: num(fields[4])? as u32,
                });
            }
            Some(&"ce") => {
                if fields.len() != 7 {
                    return Err(err("ce records need 7 fields"));
                }
                ce.push(MirrorCandidate {
                    switch: num(fields[1])? as usize,
                    port: num(fields[2])? as usize,
                    ts_ns: num(fields[3])?,
                    flow: FlowId(num(fields[4])?),
                    psn: num(fields[5])?,
                    bytes: num(fields[6])? as u32,
                });
            }
            Some(tag) => return Err(err(&format!("unknown record tag {tag:?}"))),
            None => unreachable!("split always yields one field"),
        }
    }
    Ok((tx, ce))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx() -> Vec<TxRecord> {
        vec![
            TxRecord {
                host: 3,
                flow: FlowId(7),
                ts_ns: 12345,
                bytes: 1000,
            },
            TxRecord {
                host: 0,
                flow: FlowId(8),
                ts_ns: 20000,
                bytes: 64,
            },
        ]
    }

    fn sample_ce() -> Vec<MirrorCandidate> {
        vec![MirrorCandidate {
            switch: 20,
            port: 2,
            ts_ns: 555,
            flow: FlowId(7),
            psn: 42,
            bytes: 1000,
        }]
    }

    #[test]
    fn roundtrip_mixed_trace() {
        let mut buf = Vec::new();
        write_tx_records(&mut buf, &sample_tx()).unwrap();
        write_mirror_candidates(&mut buf, &sample_ce()).unwrap();
        let (tx, ce) = read_trace(&buf[..]).unwrap();
        assert_eq!(tx, sample_tx());
        assert_eq!(ce, sample_ce());
    }

    #[test]
    fn pause_and_link_lines_serialize_stably() {
        let pauses = vec![
            PauseRecord {
                node: 16,
                port: 2,
                triggered_by: 16,
                ts_ns: 300_000,
                on: true,
            },
            PauseRecord {
                node: 16,
                port: 2,
                triggered_by: 16,
                ts_ns: 315_000,
                on: false,
            },
        ];
        let links = vec![LinkRecord {
            node: 16,
            port: 3,
            ts_ns: 200_000,
            up: false,
        }];
        let mut buf = Vec::new();
        write_pause_records(&mut buf, &pauses).unwrap();
        write_link_records(&mut buf, &links).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "pause,16,2,16,300000,1\npause,16,2,16,315000,0\nlink,16,3,200000,0\n"
        );
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let input = "# a trace\n\ntx,0,1,100,500\n";
        let (tx, ce) = read_trace(input.as_bytes()).unwrap();
        assert_eq!(tx.len(), 1);
        assert!(ce.is_empty());
    }

    #[test]
    fn unknown_tags_are_rejected_with_line_number() {
        let input = "tx,0,1,100,500\nbogus,1,2\n";
        let e = read_trace(input.as_bytes()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown record tag"));
    }

    #[test]
    fn malformed_numbers_are_rejected() {
        let e = read_trace("tx,0,x,100,500\n".as_bytes()).unwrap_err();
        assert!(e.message.contains("bad number"));
        let e = read_trace("tx,0,1,100\n".as_bytes()).unwrap_err();
        assert!(e.message.contains("5 fields"));
    }
}
