//! Ground-truth telemetry taps: everything the μMon evaluation needs to
//! compare against — per-flow egress records, CE-marked packet sightings
//! (mirror candidates), queue episodes and a time-weighted queue-length
//! distribution — plus the per-node clock model that exercises the
//! analyzer's time alignment (§6.1).

use crate::packet::FlowId;
use crate::topology::{NodeId, PortId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One data packet leaving its source host (ground truth for rate curves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxRecord {
    /// Sending host.
    pub host: NodeId,
    /// Flow id.
    pub flow: FlowId,
    /// True simulation time of NIC enqueue, in ns.
    pub ts_ns: u64,
    /// Wire bytes.
    pub bytes: u32,
}

/// A CE-marked data packet observed leaving a switch — the candidate set the
/// μEvent ACL mirror rule matches against (§5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirrorCandidate {
    /// Switch the packet traversed.
    pub switch: NodeId,
    /// Egress port at that switch.
    pub port: PortId,
    /// Switch-local timestamp (true time + that switch's clock offset), ns.
    pub ts_ns: u64,
    /// Flow id.
    pub flow: FlowId,
    /// Packet sequence number (the field the sampler masks).
    pub psn: u64,
    /// Wire bytes (what mirroring would cost).
    pub bytes: u32,
}

/// A PFC pause-state change at an upstream port, caused by a congested
/// downstream queue (lossless-fabric mode). `on == true` is XOFF, `false`
/// is XON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseRecord {
    /// The node whose egress port was paused/resumed.
    pub node: NodeId,
    /// The paused/resumed port on that node.
    pub port: PortId,
    /// The congested switch that triggered the change.
    pub triggered_by: NodeId,
    /// True time of the change, ns.
    pub ts_ns: u64,
    /// XOFF (`true`) or XON (`false`).
    pub on: bool,
}

/// A link state change at one endpoint (failure injection): the duplex link
/// attached to `(node, port)` went down (`up == false`) or recovered. Each
/// flap produces one record per endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkRecord {
    /// The endpoint node.
    pub node: NodeId,
    /// The endpoint port.
    pub port: PortId,
    /// True time of the change, ns.
    pub ts_ns: u64,
    /// New state: `true` = up, `false` = down.
    pub up: bool,
}

/// A packet dropped at a switch (deflect-on-drop tap, §5): with the option
/// enabled, switches report dropped packets to the analyzer so loss events
/// become visible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropRecord {
    /// Switch where the drop happened.
    pub switch: NodeId,
    /// Egress port whose buffer was full.
    pub port: PortId,
    /// Switch-local timestamp, ns.
    pub ts_ns: u64,
    /// Flow the packet belonged to.
    pub flow: FlowId,
    /// Sequence number of the dropped packet.
    pub psn: u64,
    /// Wire bytes of the dropped packet.
    pub bytes: u32,
}

/// An in-dataplane burst observation (programmable-switch mode, §5): a data
/// packet enqueued while the queue was at or above the capture threshold,
/// with the instantaneous queue length — what a ConQuest/BurstRadar-style
/// P4 program sees directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstRecord {
    /// Observing switch.
    pub switch: NodeId,
    /// Congested egress port.
    pub port: PortId,
    /// Switch-local timestamp, ns.
    pub ts_ns: u64,
    /// Flow of the enqueued packet.
    pub flow: FlowId,
    /// Instantaneous queue length at enqueue, bytes.
    pub qlen_bytes: u32,
}

/// A congestion episode at one switch port: a maximal interval during which
/// the queue is at or above the ECN `kmin` threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueEpisode {
    /// Switch node.
    pub switch: NodeId,
    /// Port.
    pub port: PortId,
    /// True time the queue first reached `kmin`, ns.
    pub start_ns: u64,
    /// True time the queue dropped back below `kmin`, ns.
    pub end_ns: u64,
    /// Maximum queue length reached during the episode, bytes.
    pub max_qlen: u32,
}

impl QueueEpisode {
    /// Episode duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Online per-port episode tracker.
#[derive(Debug, Clone)]
pub(crate) struct EpisodeTracker {
    kmin: u32,
    active: Option<(u64, u32)>, // (start_ns, max_qlen)
}

impl EpisodeTracker {
    pub(crate) fn new(kmin: u32) -> Self {
        Self { kmin, active: None }
    }

    /// Observes a queue-length change; returns a finished episode if one
    /// just closed.
    pub(crate) fn observe(&mut self, now_ns: u64, qlen: u32) -> Option<(u64, u64, u32)> {
        match self.active {
            None if qlen >= self.kmin => {
                self.active = Some((now_ns, qlen));
                None
            }
            Some((start, max)) if qlen < self.kmin => {
                self.active = None;
                Some((start, now_ns, max))
            }
            Some((start, max)) => {
                self.active = Some((start, max.max(qlen)));
                None
            }
            None => None,
        }
    }

    /// Force-closes an open episode at simulation end.
    pub(crate) fn flush(&mut self, now_ns: u64) -> Option<(u64, u64, u32)> {
        self.active.take().map(|(start, max)| (start, now_ns, max))
    }
}

/// Time-weighted queue-length distribution (for Fig. 16c): accumulates, per
/// length bucket, the nanoseconds the queue spent at that length.
#[derive(Debug, Clone)]
pub struct QueueLengthDist {
    /// Bucket width in bytes.
    pub bucket_bytes: u32,
    /// `weight_ns[i]` = time spent with qlen in `[i·w, (i+1)·w)`.
    pub weight_ns: Vec<u64>,
    last_change_ns: u64,
    last_qlen: u32,
}

impl QueueLengthDist {
    /// New distribution with the given bucket width.
    pub fn new(bucket_bytes: u32) -> Self {
        Self {
            bucket_bytes,
            weight_ns: Vec::new(),
            last_change_ns: 0,
            last_qlen: 0,
        }
    }

    /// Records a queue-length change at `now_ns`.
    pub fn observe(&mut self, now_ns: u64, qlen: u32) {
        let dt = now_ns.saturating_sub(self.last_change_ns);
        if dt > 0 {
            let idx = (self.last_qlen / self.bucket_bytes) as usize;
            if idx >= self.weight_ns.len() {
                self.weight_ns.resize(idx + 1, 0);
            }
            self.weight_ns[idx] += dt;
        }
        self.last_change_ns = now_ns;
        self.last_qlen = qlen;
    }

    /// Closes the distribution at simulation end.
    pub fn finish(&mut self, end_ns: u64) {
        self.observe(end_ns, self.last_qlen);
    }

    /// CDF points `(qlen_upper_bytes, fraction_of_time)`.
    pub fn cdf(&self) -> Vec<(u32, f64)> {
        let total: u64 = self.weight_ns.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        let mut acc = 0u64;
        self.weight_ns
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                acc += w;
                (
                    (i as u32 + 1) * self.bucket_bytes,
                    acc as f64 / total as f64,
                )
            })
            .collect()
    }

    /// Fraction of time the queue length was at or above `threshold` bytes.
    pub fn fraction_at_or_above(&self, threshold: u32) -> f64 {
        let total: u64 = self.weight_ns.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let first = (threshold / self.bucket_bytes) as usize;
        let above: u64 = self.weight_ns.iter().skip(first).sum();
        above as f64 / total as f64
    }

    /// Merges another distribution into this one (same bucket width).
    pub fn merge(&mut self, other: &QueueLengthDist) {
        assert_eq!(self.bucket_bytes, other.bucket_bytes);
        if other.weight_ns.len() > self.weight_ns.len() {
            self.weight_ns.resize(other.weight_ns.len(), 0);
        }
        for (i, &w) in other.weight_ns.iter().enumerate() {
            self.weight_ns[i] += w;
        }
    }
}

/// Per-node clock model: nanosecond-accurate PTP-style synchronization with
/// a bounded residual offset per node (§6.1: errors "do not extend beyond
/// two microsecond-level windows").
#[derive(Debug, Clone)]
pub struct ClockModel {
    offsets_ns: Vec<i64>,
}

impl ClockModel {
    /// Perfect clocks (all offsets zero).
    pub fn perfect(num_nodes: usize) -> Self {
        Self {
            offsets_ns: vec![0; num_nodes],
        }
    }

    /// Clocks with uniform residual offsets in `[-bound, +bound]` ns.
    pub fn ptp(num_nodes: usize, bound_ns: i64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC10C);
        Self {
            offsets_ns: (0..num_nodes)
                .map(|_| rng.gen_range(-bound_ns..=bound_ns))
                .collect(),
        }
    }

    /// Local timestamp at `node` for true time `true_ns`.
    pub fn local_time(&self, node: NodeId, true_ns: u64) -> u64 {
        let t = true_ns as i64 + self.offsets_ns[node];
        t.max(0) as u64
    }

    /// The residual offset of `node` in ns.
    pub fn offset(&self, node: NodeId) -> i64 {
        self.offsets_ns[node]
    }
}

/// All telemetry collected during one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Source-host egress records (ground truth for μFlow curves).
    pub tx_records: Vec<TxRecord>,
    /// CE-marked data packets observed at switch egress.
    pub mirror_candidates: Vec<MirrorCandidate>,
    /// Finished queue episodes (queue ≥ kmin).
    pub episodes: Vec<QueueEpisode>,
    /// PFC pause-state changes (empty unless lossless mode is enabled or a
    /// pause storm is injected).
    pub pause_records: Vec<PauseRecord>,
    /// Link state changes (empty unless link flaps are injected).
    pub link_records: Vec<LinkRecord>,
    /// Dropped data packets (the deflect-on-drop tap).
    pub drop_records: Vec<DropRecord>,
    /// In-dataplane burst observations (programmable-switch mode).
    pub burst_records: Vec<BurstRecord>,
    /// Aggregate time-weighted queue-length distribution over all fabric
    /// ports.
    pub queue_dist: Option<QueueLengthDist>,
    /// Total packets dropped in the fabric (buffer overflows plus injected
    /// random losses).
    pub drops: u64,
    /// Packets lost to injected random link/ASIC errors (fault injection).
    pub random_losses: u64,
    /// Packets lost on the wire of a failed link (link-flap injection).
    pub link_losses: u64,
    /// Total data bytes delivered to destination hosts.
    pub delivered_bytes: u64,
    /// Total data bytes injected by source hosts.
    pub injected_bytes: u64,
}

/// Per-tap dispatch tags collected by one partition of a parallel run: for
/// every run-phase record pushed into the matching [`Telemetry`] vector, the
/// `(time, prio)` of the event whose dispatch produced it. `(time, prio)` is
/// the global dispatch order, so a stable sort of the concatenated
/// per-partition records by their tags reproduces the sequential record
/// order exactly (records born inside the same dispatch share a tag and keep
/// their relative order — they always come from one partition).
#[derive(Debug, Default)]
pub(crate) struct TapTags {
    /// Tags for `tx_records`.
    pub(crate) tx: Vec<(u64, u64)>,
    /// Tags for `mirror_candidates`.
    pub(crate) mirror: Vec<(u64, u64)>,
    /// Tags for run-phase `episodes` (the finish-phase flush is sorted by
    /// `(switch, port)` instead — it happens after the last dispatch).
    pub(crate) episode: Vec<(u64, u64)>,
    /// Tags for `pause_records`.
    pub(crate) pause: Vec<(u64, u64)>,
    /// Tags for `link_records`.
    pub(crate) link: Vec<(u64, u64)>,
    /// Tags for `drop_records`.
    pub(crate) drop: Vec<(u64, u64)>,
    /// Tags for `burst_records`.
    pub(crate) burst: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_tracker_detects_maximal_intervals() {
        let mut t = EpisodeTracker::new(100);
        assert!(t.observe(0, 50).is_none());
        assert!(t.observe(10, 100).is_none()); // opens
        assert!(t.observe(20, 250).is_none()); // max grows
        assert!(t.observe(30, 120).is_none());
        let (start, end, max) = t.observe(40, 99).unwrap(); // closes
        assert_eq!((start, end, max), (10, 40, 250));
        // A second episode can open afterwards.
        assert!(t.observe(50, 500).is_none());
        let flushed = t.flush(60).unwrap();
        assert_eq!(flushed, (50, 60, 500));
    }

    #[test]
    fn episode_tracker_ignores_subthreshold_noise() {
        let mut t = EpisodeTracker::new(100);
        for ts in 0..50 {
            assert!(t.observe(ts, 99).is_none());
        }
        assert!(t.flush(50).is_none());
    }

    #[test]
    fn queue_dist_weights_time_not_samples() {
        let mut d = QueueLengthDist::new(10);
        d.observe(0, 5); // qlen 0 for 0 ns
        d.observe(100, 25); // qlen 5 (bucket 0) for 100 ns
        d.observe(110, 0); // qlen 25 (bucket 2) for 10 ns
        d.finish(200); // qlen 0 (bucket 0) for 90 ns
        let total: u64 = d.weight_ns.iter().sum();
        assert_eq!(total, 200);
        assert_eq!(d.weight_ns[0], 190);
        assert_eq!(d.weight_ns[2], 10);
        assert!((d.fraction_at_or_above(20) - 0.05).abs() < 1e-12);
        let cdf = d.cdf();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn queue_dist_merge_adds_weights() {
        let mut a = QueueLengthDist::new(10);
        a.observe(0, 15);
        a.finish(100);
        let mut b = QueueLengthDist::new(10);
        b.observe(0, 15);
        b.finish(300);
        a.merge(&b);
        assert_eq!(a.weight_ns[1], 400);
    }

    #[test]
    fn ptp_clock_offsets_are_bounded_and_deterministic() {
        let c1 = ClockModel::ptp(30, 200, 42);
        let c2 = ClockModel::ptp(30, 200, 42);
        for n in 0..30 {
            assert_eq!(c1.offset(n), c2.offset(n));
            assert!(c1.offset(n).abs() <= 200);
        }
        // Local time applies the offset.
        let n0 = c1.offset(0);
        assert_eq!(c1.local_time(0, 10_000), (10_000i64 + n0) as u64);
    }

    #[test]
    fn perfect_clock_is_identity() {
        let c = ClockModel::perfect(5);
        assert_eq!(c.local_time(3, 777), 777);
    }
}
