//! Output ports: FIFO byte queues with RED/ECN marking at DCQCN thresholds
//! and tail drop at the buffer limit.

use crate::packet::{EcnCodepoint, Packet};
use rand::Rng;
use std::collections::VecDeque;

/// RED-style ECN marking configuration (the DCQCN switch-side setting).
///
/// Paper defaults (§7.2): `kmin = 20 KiB`, `kmax = 200 KiB`, `pmax = 0.01`.
/// A packet enqueued while the instantaneous queue length is
///
/// * below `kmin` is never marked,
/// * above `kmax` is always marked,
/// * in between is marked with probability `pmax · (q − kmin)/(kmax − kmin)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcnConfig {
    /// Lower marking threshold in bytes.
    pub kmin: u32,
    /// Upper marking threshold in bytes.
    pub kmax: u32,
    /// Marking probability at `kmax`.
    pub pmax: f64,
}

impl Default for EcnConfig {
    fn default() -> Self {
        Self {
            kmin: 20 * 1024,
            kmax: 200 * 1024,
            pmax: 0.01,
        }
    }
}

impl EcnConfig {
    /// Decides whether to mark a packet arriving at queue length `qlen`
    /// bytes, drawing randomness from `rng` (only in the linear region).
    pub fn should_mark<R: Rng>(&self, qlen: u32, rng: &mut R) -> bool {
        if qlen <= self.kmin {
            false
        } else if qlen >= self.kmax {
            true
        } else {
            let p = self.pmax * (qlen - self.kmin) as f64 / (self.kmax - self.kmin) as f64;
            rng.gen_bool(p.clamp(0.0, 1.0))
        }
    }
}

/// What happened to a packet offered to a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Queued, not ECN-marked.
    Queued,
    /// Queued and CE-marked on entry.
    QueuedMarked,
    /// Tail-dropped: the buffer was full.
    Dropped,
}

/// One output port: a FIFO of packets draining at the link rate.
///
/// The port itself is passive — the simulator schedules dequeue events; the
/// port just tracks bytes, marking and drops.
#[derive(Debug, Clone)]
pub struct OutPort {
    queue: VecDeque<Packet>,
    qlen_bytes: u32,
    /// Buffer capacity in bytes (tail drop beyond).
    pub capacity: u32,
    /// ECN marking config; `None` disables marking (host egress ports).
    pub ecn: Option<EcnConfig>,
    /// True while the link is transmitting the head packet.
    pub busy: bool,
    /// PFC pause refcount: paused while > 0 (several congested downstream
    /// queues can pause the same port; each sends its own resume).
    pub pause_count: u32,
    /// Total packets dropped at this port.
    pub drops: u64,
    /// Total bytes dropped at this port.
    pub dropped_bytes: u64,
}

impl OutPort {
    /// Creates an empty port with the given buffer capacity.
    pub fn new(capacity: u32, ecn: Option<EcnConfig>) -> Self {
        Self {
            queue: VecDeque::new(),
            qlen_bytes: 0,
            capacity,
            ecn,
            busy: false,
            pause_count: 0,
            drops: 0,
            dropped_bytes: 0,
        }
    }

    /// True while at least one downstream PFC pause holds this port.
    pub fn is_paused(&self) -> bool {
        self.pause_count > 0
    }

    /// Current queue length in bytes (not counting the in-flight packet).
    pub fn qlen_bytes(&self) -> u32 {
        self.qlen_bytes
    }

    /// Packets currently queued.
    pub fn qlen_packets(&self) -> usize {
        self.queue.len()
    }

    /// Offers a packet: marks (per ECN config, only ECT packets) and queues
    /// it, or tail-drops it if the buffer is full.
    pub fn enqueue<R: Rng>(&mut self, mut packet: Packet, rng: &mut R) -> EnqueueOutcome {
        if self.qlen_bytes + packet.size > self.capacity {
            self.drops += 1;
            self.dropped_bytes += packet.size as u64;
            return EnqueueOutcome::Dropped;
        }
        let mut marked = false;
        if let Some(ecn) = self.ecn {
            if packet.ecn == EcnCodepoint::Ect && ecn.should_mark(self.qlen_bytes, rng) {
                packet.ecn = EcnCodepoint::Ce;
                marked = true;
            }
        }
        self.qlen_bytes += packet.size;
        self.queue.push_back(packet);
        if marked {
            EnqueueOutcome::QueuedMarked
        } else {
            EnqueueOutcome::Queued
        }
    }

    /// Removes and returns the head packet.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let p = self.queue.pop_front()?;
        self.qlen_bytes -= p.size;
        Some(p)
    }

    /// Peeks the head packet.
    pub fn head(&self) -> Option<&Packet> {
        self.queue.front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn pkt(size: u32) -> Packet {
        Packet::data(FlowId(1), 0, 1, size, 0, 0)
    }

    #[test]
    fn fifo_order_and_byte_accounting() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut port = OutPort::new(10_000, None);
        for psn in 0..3 {
            let mut p = pkt(1000);
            p.psn = psn;
            assert_eq!(port.enqueue(p, &mut rng), EnqueueOutcome::Queued);
        }
        assert_eq!(port.qlen_bytes(), 3000);
        assert_eq!(port.dequeue().unwrap().psn, 0);
        assert_eq!(port.dequeue().unwrap().psn, 1);
        assert_eq!(port.qlen_bytes(), 1000);
    }

    #[test]
    fn tail_drop_at_capacity() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut port = OutPort::new(2500, None);
        assert_eq!(port.enqueue(pkt(1000), &mut rng), EnqueueOutcome::Queued);
        assert_eq!(port.enqueue(pkt(1000), &mut rng), EnqueueOutcome::Queued);
        assert_eq!(port.enqueue(pkt(1000), &mut rng), EnqueueOutcome::Dropped);
        assert_eq!(port.drops, 1);
        assert_eq!(port.dropped_bytes, 1000);
        assert_eq!(port.qlen_bytes(), 2000, "dropped packet must not count");
    }

    #[test]
    fn no_marking_below_kmin() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ecn = EcnConfig::default();
        for _ in 0..1000 {
            assert!(!ecn.should_mark(20 * 1024, &mut rng));
        }
    }

    #[test]
    fn always_mark_above_kmax() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ecn = EcnConfig::default();
        assert!(ecn.should_mark(200 * 1024, &mut rng));
        assert!(ecn.should_mark(1 << 20, &mut rng));
    }

    #[test]
    fn linear_region_marks_at_roughly_pmax_scaled() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ecn = EcnConfig {
            kmin: 0,
            kmax: 100,
            pmax: 0.5,
        };
        // At qlen 50 the probability is 0.25.
        let marks = (0..100_000)
            .filter(|_| ecn.should_mark(50, &mut rng))
            .count();
        let rate = marks as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn marked_packets_become_ce_in_queue() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut port = OutPort::new(
            1 << 20,
            Some(EcnConfig {
                kmin: 0,
                kmax: 1, // everything at qlen >= 1 byte is marked
                pmax: 1.0,
            }),
        );
        port.enqueue(pkt(1000), &mut rng); // qlen 0 at decision → not marked
        let out = port.enqueue(pkt(1000), &mut rng);
        assert_eq!(out, EnqueueOutcome::QueuedMarked);
        port.dequeue();
        assert!(port.dequeue().unwrap().is_ce());
    }

    #[test]
    fn exact_capacity_fill_is_accepted() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut port = OutPort::new(3000, None);
        assert_eq!(port.enqueue(pkt(1000), &mut rng), EnqueueOutcome::Queued);
        assert_eq!(port.enqueue(pkt(2000), &mut rng), EnqueueOutcome::Queued);
        assert_eq!(port.qlen_bytes(), 3000, "qlen + size == capacity fits");
        assert_eq!(port.enqueue(pkt(1), &mut rng), EnqueueOutcome::Dropped);
        // Draining the head frees capacity again.
        port.dequeue();
        assert_eq!(port.enqueue(pkt(1000), &mut rng), EnqueueOutcome::Queued);
        assert_eq!(port.drops, 1);
    }

    #[test]
    fn pause_refcount_holds_until_every_resume() {
        let mut port = OutPort::new(1000, None);
        assert!(!port.is_paused());
        port.pause_count += 1;
        port.pause_count += 1;
        port.pause_count -= 1;
        assert!(
            port.is_paused(),
            "one downstream pause must still hold the port"
        );
        port.pause_count -= 1;
        assert!(!port.is_paused());
    }

    #[test]
    fn empty_port_dequeues_none_and_head_peeks_without_consuming() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut port = OutPort::new(10_000, None);
        assert!(port.dequeue().is_none());
        assert!(port.head().is_none());
        let mut p = pkt(500);
        p.psn = 42;
        port.enqueue(p, &mut rng);
        assert_eq!(port.head().unwrap().psn, 42);
        assert_eq!(port.head().unwrap().psn, 42);
        assert_eq!(port.qlen_packets(), 1);
    }

    #[test]
    fn marking_thresholds_are_exact_boundaries() {
        // qlen == kmin never marks, qlen == kmax always marks (even with
        // pmax = 0), and the open interval in between follows pmax alone.
        let ecn = EcnConfig {
            kmin: 100,
            kmax: 200,
            pmax: 0.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(!ecn.should_mark(100, &mut rng));
        assert!(ecn.should_mark(200, &mut rng));
        assert!(!ecn.should_mark(199, &mut rng), "pmax=0 linear region");
    }

    #[test]
    fn non_ect_packets_are_never_marked() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut port = OutPort::new(
            1 << 20,
            Some(EcnConfig {
                kmin: 0,
                kmax: 1,
                pmax: 1.0,
            }),
        );
        port.enqueue(pkt(1000), &mut rng);
        let cnp = Packet::cnp(FlowId(1), 1, 0, 0, 0);
        assert_eq!(port.enqueue(cnp, &mut rng), EnqueueOutcome::Queued);
    }
}
