//! Packets and flow identifiers.

/// Dense flow identifier assigned by the workload generator. Maps 1:1 to a
//  5-tuple via `wavesketch::FlowKey::from_id` at the measurement layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// ECN codepoint of a packet's IP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcnCodepoint {
    /// Not ECN-capable transport (control packets: CNPs, ACKs).
    NotEct,
    /// ECN-capable, not marked.
    Ect,
    /// Congestion experienced — set by a switch whose queue crossed the
    /// RED/ECN marking decision.
    Ce,
}

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Application payload (RoCEv2 or TCP segment).
    Data,
    /// Congestion notification packet (DCQCN NP → RP feedback).
    Cnp,
    /// Transport acknowledgement (used by the DCTCP-style transport).
    Ack {
        /// Sequence number being acknowledged (cumulative).
        ack_seq: u64,
        /// Echo of the data packet's CE mark (DCTCP's ECN-Echo).
        ece: bool,
    },
}

/// A simulated packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Source host node.
    pub src: usize,
    /// Destination host node.
    pub dst: usize,
    /// On-wire size in bytes (headers included).
    pub size: u32,
    /// Packet sequence number within the flow (RoCEv2 PSN / TCP segment
    /// number). Control packets carry the triggering data packet's PSN.
    pub psn: u64,
    /// ECN codepoint (mutated in flight by marking switches).
    pub ecn: EcnCodepoint,
    /// Payload type.
    pub kind: PacketKind,
    /// True-time when the source host enqueued the packet (ns).
    pub sent_ns: u64,
}

impl Packet {
    /// Creates an ECT data packet.
    pub fn data(flow: FlowId, src: usize, dst: usize, size: u32, psn: u64, now: u64) -> Self {
        Self {
            flow,
            src,
            dst,
            size,
            psn,
            ecn: EcnCodepoint::Ect,
            kind: PacketKind::Data,
            sent_ns: now,
        }
    }

    /// Creates a CNP heading back to the sender (64 B control packet).
    pub fn cnp(flow: FlowId, receiver: usize, sender: usize, psn: u64, now: u64) -> Self {
        Self {
            flow,
            src: receiver,
            dst: sender,
            size: 64,
            psn,
            ecn: EcnCodepoint::NotEct,
            kind: PacketKind::Cnp,
            sent_ns: now,
        }
    }

    /// Creates an ACK heading back to the sender (64 B control packet).
    pub fn ack(
        flow: FlowId,
        receiver: usize,
        sender: usize,
        psn: u64,
        ack_seq: u64,
        ece: bool,
        now: u64,
    ) -> Self {
        Self {
            flow,
            src: receiver,
            dst: sender,
            size: 64,
            psn,
            ecn: EcnCodepoint::NotEct,
            kind: PacketKind::Ack { ack_seq, ece },
            sent_ns: now,
        }
    }

    /// True for application payload packets.
    pub fn is_data(&self) -> bool {
        self.kind == PacketKind::Data
    }

    /// True if this packet was CE-marked somewhere along its path.
    pub fn is_ce(&self) -> bool {
        self.ecn == EcnCodepoint::Ce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packets_are_ect_until_marked() {
        let p = Packet::data(FlowId(1), 0, 5, 1000, 42, 0);
        assert!(p.is_data());
        assert!(!p.is_ce());
        assert_eq!(p.ecn, EcnCodepoint::Ect);
    }

    #[test]
    fn control_packets_are_not_ect() {
        let c = Packet::cnp(FlowId(1), 5, 0, 42, 10);
        assert_eq!(c.ecn, EcnCodepoint::NotEct);
        assert_eq!(c.size, 64);
        assert_eq!((c.src, c.dst), (5, 0), "CNP flows receiver → sender");
        let a = Packet::ack(FlowId(1), 5, 0, 42, 43, true, 10);
        assert!(matches!(
            a.kind,
            PacketKind::Ack {
                ack_seq: 43,
                ece: true
            }
        ));
    }
}
