//! Event schedulers for the simulator: the original binary heap and an
//! allocation-free calendar queue (timing wheel), selectable per run via
//! [`SchedulerKind`].
//!
//! Both schedulers implement the same total order — `(time, prio)` ascending
//! — so a simulation produces bit-identical traces under either. `prio` is a
//! globally-stable priority assigned by the simulator: the high bits are a
//! per-creator-node schedule counter and the low bits the creator node id,
//! which makes the order independent of *when* an event was pushed relative
//! to events created by other nodes. That independence is what lets the
//! parallel engine replay the exact sequential order: each partition pushes
//! its events whenever its thread gets to them, yet `(time, prio)` sorts
//! them into the same sequence a single-threaded run produces.
//!
//! The calendar queue is the default: after warm-up its steady state
//! performs zero heap allocation (slots are `VecDeque`s that retain capacity
//! across drains, and the overflow heap keeps its backing buffer), and both
//! push and pop are O(1)-ish for the near-future events that dominate a
//! packet simulation.
//!
//! # Wheel layout
//!
//! The wheel has [`WHEEL_SLOTS`] slots of 1 ns each, indexed by
//! `time & (WHEEL_SLOTS - 1)`. An event within the horizon
//! (`time - cursor < WHEEL_SLOTS`) is inserted into its slot in `prio`
//! order; because the horizon never exceeds one wheel revolution, every
//! event in a slot carries the *same* timestamp, so the slot is already
//! sorted by the full `(time, prio)` key. Unlike the historical
//! insertion-order FIFO, the ordered insert is required because priorities
//! are no longer monotone in push order (a node with a low counter can push
//! after a node with a high one). The common case — appending the largest
//! priority — stays O(1). Events at or beyond the horizon go to a small
//! overflow heap ordered by `(time, prio)`.
//!
//! On pop, the head of the next occupied slot and the overflow head are
//! compared by `(time, prio)` and the smaller key wins, which is exactly the
//! global order.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Which event scheduler the simulator uses. The choice never changes the
/// simulation result — only its speed and allocation profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// `BinaryHeap<(time, prio)>` — the original scheduler. O(log n)
    /// push/pop; kept as the differential reference and for the perf gate's
    /// heap-vs-calendar comparison.
    Heap,
    /// Calendar queue (timing wheel) with an overflow heap — O(1) push/pop
    /// within the horizon and zero steady-state allocation.
    #[default]
    Calendar,
}

/// Number of 1 ns wheel slots. Must be a power of two. 65536 ns (~65 µs)
/// comfortably covers serialization (~80 ns/packet at 100 Gbps),
/// propagation (1 µs links) and CNP/alpha timers (~55 µs); only the sparse
/// rate-increase timers (~1.5 ms) and far-future flow starts overflow.
pub const WHEEL_SLOTS: usize = 1 << 16;
const WHEEL_MASK: u64 = (WHEEL_SLOTS as u64) - 1;
const HORIZON: u64 = WHEEL_SLOTS as u64;

/// A queued item: `(time, prio)` carries the total order, `item` rides
/// along.
#[derive(Debug)]
pub struct Entry<T> {
    time: u64,
    prio: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.prio == other.prio
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.prio).cmp(&(other.time, other.prio))
    }
}

/// Calendar queue: a timing wheel of per-nanosecond slots (sorted by
/// priority) plus an overflow heap for events beyond the horizon.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// `slots[time & WHEEL_MASK]`; within the horizon each slot holds events
    /// of exactly one timestamp, kept sorted ascending by `prio`.
    slots: Vec<VecDeque<(u64, u64, T)>>,
    /// One bit per slot: set iff the slot is nonempty. Scanned a word
    /// (64 slots) at a time to find the next occupied slot.
    occupied: Vec<u64>,
    /// Lower bound on every queued timestamp; the wheel maps times in
    /// `[cursor, cursor + HORIZON)`.
    cursor: u64,
    /// Events currently on the wheel.
    wheel_len: usize,
    /// Events at `time - cursor >= HORIZON` when scheduled.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
}

impl<T> CalendarQueue<T> {
    /// An empty queue with its wheel preallocated (slot buffers grow on
    /// first use and are then reused forever).
    pub fn new() -> Self {
        Self {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: vec![0; WHEEL_SLOTS / 64],
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Total queued events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queues `item` at `time` with priority `prio`. `time` must be `>=`
    /// the timestamp of the last popped event (no scheduling into the
    /// past); priorities within a timestamp may arrive in any order.
    pub fn push(&mut self, time: u64, prio: u64, item: T) {
        debug_assert!(time >= self.cursor, "scheduling into the past");
        if time - self.cursor >= HORIZON {
            self.overflow.push(Reverse(Entry { time, prio, item }));
        } else {
            let idx = (time & WHEEL_MASK) as usize;
            let slot = &mut self.slots[idx];
            debug_assert!(slot.iter().all(|(t, _, _)| *t == time));
            // Ordered insert by priority. The fast path — the new event has
            // the largest priority seen in this slot — is an O(1) append
            // and covers the monotone single-creator case.
            match slot.back() {
                Some(&(_, p, _)) if p > prio => {
                    let at = slot.partition_point(|&(_, p, _)| p < prio);
                    slot.insert(at, (time, prio, item));
                }
                _ => slot.push_back((time, prio, item)),
            }
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.wheel_len += 1;
        }
    }

    /// Removes and returns the earliest `(time, prio, item)` in `(time,
    /// prio)` order.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        let wheel_key = self.next_wheel_key();
        let overflow_key = self.overflow.peek().map(|Reverse(e)| (e.time, e.prio));
        let take_overflow = match (wheel_key, overflow_key) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(kw), Some(ko)) => ko < kw,
        };
        if take_overflow {
            let Reverse(e) = self.overflow.pop().expect("peeked nonempty");
            self.cursor = e.time;
            Some((e.time, e.prio, e.item))
        } else {
            let (tw, _) = wheel_key.expect("wheel branch");
            self.cursor = tw;
            let idx = (tw & WHEEL_MASK) as usize;
            let (t, p, item) = self.slots[idx].pop_front().expect("occupied slot");
            debug_assert_eq!(t, tw);
            if self.slots[idx].is_empty() {
                self.occupied[idx / 64] &= !(1 << (idx % 64));
            }
            self.wheel_len -= 1;
            Some((tw, p, item))
        }
    }

    /// Timestamp of the earliest queued event without removing it.
    pub fn next_time(&self) -> Option<u64> {
        let wheel = self.next_wheel_key().map(|(t, _)| t);
        let over = self.overflow.peek().map(|Reverse(e)| e.time);
        match (wheel, over) {
            (None, None) => None,
            (Some(t), None) | (None, Some(t)) => Some(t),
            (Some(a), Some(b)) => Some(a.min(b)),
        }
    }

    /// `(time, prio)` of the earliest wheel event, scanning the occupancy
    /// bitmap from the cursor's slot. Every wheel event lies within one
    /// revolution of the cursor, so the first set bit found (cyclically) is
    /// the earliest slot, and its front holds the smallest priority.
    fn next_wheel_key(&self) -> Option<(u64, u64)> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.cursor & WHEEL_MASK) as usize;
        // First (partial) word: mask off bits below the cursor's slot.
        let mut word_idx = start / 64;
        let mut word = self.occupied[word_idx] & (!0u64 << (start % 64));
        let mut scanned = 0usize;
        loop {
            if word != 0 {
                let bit = word_idx * 64 + word.trailing_zeros() as usize;
                let dist = (bit + WHEEL_SLOTS - start) % WHEEL_SLOTS;
                let (_, p, _) = self.slots[bit].front().expect("occupied slot");
                return Some((self.cursor + dist as u64, *p));
            }
            word_idx = (word_idx + 1) % (WHEEL_SLOTS / 64);
            word = self.occupied[word_idx];
            scanned += 64;
            debug_assert!(scanned <= WHEEL_SLOTS + 64, "bitmap scan overran");
        }
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// The simulator's event queue: one of the two schedulers, behind a common
/// push/pop interface. Both pop in `(time, prio)` order.
#[derive(Debug)]
pub enum EventQueue<T> {
    /// Binary-heap scheduler.
    Heap(BinaryHeap<Reverse<Entry<T>>>),
    /// Calendar-queue scheduler.
    Calendar(CalendarQueue<T>),
}

impl<T> EventQueue<T> {
    /// An empty queue using the scheduler `kind`.
    pub fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Heap => Self::Heap(BinaryHeap::new()),
            SchedulerKind::Calendar => Self::Calendar(CalendarQueue::new()),
        }
    }

    /// Queues `item` at `time` with priority `prio`.
    pub fn push(&mut self, time: u64, prio: u64, item: T) {
        match self {
            Self::Heap(h) => h.push(Reverse(Entry { time, prio, item })),
            Self::Calendar(c) => c.push(time, prio, item),
        }
    }

    /// Removes and returns the earliest `(time, prio, item)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        match self {
            Self::Heap(h) => h.pop().map(|Reverse(e)| (e.time, e.prio, e.item)),
            Self::Calendar(c) => c.pop(),
        }
    }

    /// Timestamp of the earliest queued event without removing it. Used by
    /// the parallel engine to publish each partition's local lower bound.
    pub fn next_time(&self) -> Option<u64> {
        match self {
            Self::Heap(h) => h.peek().map(|Reverse(e)| e.time),
            Self::Calendar(c) => c.next_time(),
        }
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        match self {
            Self::Heap(h) => h.is_empty(),
            Self::Calendar(c) => c.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Drives both schedulers with an identical push/pop schedule and
    /// asserts they emit identical `(time, prio, item)` sequences. Delays
    /// span zero-delay, in-horizon and far-overflow cases; pops interleave
    /// with pushes the way a simulation's event loop does, and priorities
    /// are deliberately non-monotone in push order (shuffled within bursts)
    /// to exercise the ordered slot insert.
    #[test]
    fn calendar_matches_heap_order() {
        for seed in 0..8u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut heap = EventQueue::new(SchedulerKind::Heap);
            let mut cal = EventQueue::new(SchedulerKind::Calendar);
            let mut prio = 0u64;
            let mut now = 0u64;
            let mut popped = 0usize;
            let mut pushed = 0usize;
            while popped < 20_000 {
                let burst = rng.gen_range(0..4);
                let mut batch = Vec::new();
                for _ in 0..burst {
                    let delay = match rng.gen_range(0..10) {
                        0 => 0,                                    // zero-delay reschedule
                        1..=6 => rng.gen_range(0..2_000),          // serialization/propagation
                        7 | 8 => rng.gen_range(2_000..HORIZON),    // timers within horizon
                        _ => rng.gen_range(HORIZON..20 * HORIZON), // overflow
                    };
                    prio += 1;
                    batch.push((now + delay, prio));
                }
                // Push in shuffled order — priorities need not be monotone.
                while !batch.is_empty() {
                    let i = rng.gen_range(0..batch.len());
                    let (t, p) = batch.swap_remove(i);
                    heap.push(t, p, p);
                    cal.push(t, p, p);
                    pushed += 1;
                }
                if pushed > popped {
                    let h = heap.pop().expect("heap nonempty");
                    let c = cal.pop().expect("calendar nonempty");
                    assert_eq!(h, c, "seed {seed}: divergence at pop {popped}");
                    assert_eq!(heap.next_time(), cal.next_time());
                    assert!(h.0 >= now, "time went backwards");
                    now = h.0;
                    popped += 1;
                }
            }
            // Drain the rest — tails must match too.
            loop {
                let h = heap.pop();
                let c = cal.pop();
                assert_eq!(h, c, "seed {seed}: divergence in drain");
                if h.is_none() {
                    break;
                }
            }
        }
    }

    /// Timestamp ties between overflow and wheel resolve by priority in
    /// both directions — the overflow event is no longer assumed older.
    #[test]
    fn timestamp_ties_resolve_by_priority() {
        let mut q = CalendarQueue::new();
        let t = 2 * HORIZON; // beyond horizon as seen from cursor 0
        q.push(t, 5, "overflow");
        // Advance the cursor to within a horizon of `t`.
        q.push(t - 10, 1, "stepping stone");
        assert_eq!(q.pop(), Some((t - 10, 1, "stepping stone")));
        // Now `t` is in-horizon; these land on the wheel at the same time,
        // straddling the overflow event's priority.
        q.push(t, 3, "wheel-low");
        q.push(t, 8, "wheel-high");
        assert_eq!(q.next_time(), Some(t));
        assert_eq!(q.pop(), Some((t, 3, "wheel-low")));
        assert_eq!(q.pop(), Some((t, 5, "overflow")));
        assert_eq!(q.pop(), Some((t, 8, "wheel-high")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    /// Equal timestamps within the horizon pop in priority order no matter
    /// the push order.
    #[test]
    fn same_time_pops_in_priority_order() {
        let mut q = CalendarQueue::new();
        for i in (0..100u64).rev() {
            q.push(42, i, i);
        }
        for i in 0..100u64 {
            assert_eq!(q.pop(), Some((42, i, i)));
        }
        assert_eq!(q.pop(), None);
    }

    /// An empty wheel with a far-future overflow event: the cursor jumps
    /// straight to the overflow head instead of stepping slot by slot.
    #[test]
    fn empty_wheel_jumps_to_overflow() {
        let mut q = CalendarQueue::new();
        q.push(10 * HORIZON + 3, 1, ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_time(), Some(10 * HORIZON + 3));
        assert_eq!(q.pop(), Some((10 * HORIZON + 3, 1, ())));
        // After the jump the wheel window follows the new cursor.
        q.push(10 * HORIZON + 4, 2, ());
        assert_eq!(q.pop(), Some((10 * HORIZON + 4, 2, ())));
    }

    /// Slot reuse across wheel revolutions: once drained, a slot accepts
    /// the same residue class one revolution later.
    #[test]
    fn wheel_wraps_cleanly() {
        let mut q = CalendarQueue::new();
        let mut prio = 0u64;
        let mut now = 0u64;
        for round in 0..5u64 {
            for k in 0..64u64 {
                prio += 1;
                q.push(round * HORIZON + k * 1000, prio, round * 1000 + k);
            }
            for k in 0..64u64 {
                let (t, _, item) = q.pop().expect("queued");
                assert_eq!(t, round * HORIZON + k * 1000);
                assert_eq!(item, round * 1000 + k);
                assert!(t >= now);
                now = t;
            }
        }
        assert!(q.is_empty());
    }
}
