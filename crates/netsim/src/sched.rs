//! Event schedulers for the simulator: the original binary heap and an
//! allocation-free calendar queue (timing wheel), selectable per run via
//! [`SchedulerKind`].
//!
//! Both schedulers implement the same total order — `(time, seq)` ascending,
//! where `seq` is the global, monotonically increasing schedule counter — so
//! a simulation produces bit-identical traces under either. The calendar
//! queue is the default: after warm-up its steady state performs zero heap
//! allocation (slots are `VecDeque`s that retain capacity across drains, and
//! the overflow heap keeps its backing buffer), and both push and pop are
//! O(1) for the near-future events that dominate a packet simulation.
//!
//! # Wheel layout and the overflow tie-break
//!
//! The wheel has [`WHEEL_SLOTS`] slots of 1 ns each, indexed by
//! `time & (WHEEL_SLOTS - 1)`. An event within the horizon
//! (`time - cursor < WHEEL_SLOTS`) is appended to its slot; because the
//! horizon never exceeds one wheel revolution, every event in a slot carries
//! the *same* timestamp, so slot FIFO order is exactly `seq` order and no
//! per-slot sort is ever needed. Events at or beyond the horizon go to a
//! small overflow heap ordered by `(time, seq)`.
//!
//! When the overflow head and the next wheel slot carry the same timestamp
//! `T`, the overflow event must pop first. Proof: an event lands in overflow
//! only if `T - now >= H` at schedule time, and in a slot only if
//! `T - now' < H`; `now` is nondecreasing over a run, so the overflow event
//! was scheduled at a strictly earlier `now` and therefore holds a strictly
//! smaller `seq` than every slot event at `T`. Draining overflow first at
//! equal timestamps is thus precisely `(time, seq)` order.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Which event scheduler the simulator uses. The choice never changes the
/// simulation result — only its speed and allocation profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// `BinaryHeap<(time, seq)>` — the original scheduler. O(log n)
    /// push/pop; kept as the differential reference and for the perf gate's
    /// heap-vs-calendar comparison.
    Heap,
    /// Calendar queue (timing wheel) with an overflow heap — O(1) push/pop
    /// within the horizon and zero steady-state allocation.
    #[default]
    Calendar,
}

/// Number of 1 ns wheel slots. Must be a power of two. 65536 ns (~65 µs)
/// comfortably covers serialization (~80 ns/packet at 100 Gbps),
/// propagation (1 µs links) and CNP/alpha timers (~55 µs); only the sparse
/// rate-increase timers (~1.5 ms) and far-future flow starts overflow.
pub const WHEEL_SLOTS: usize = 1 << 16;
const WHEEL_MASK: u64 = (WHEEL_SLOTS as u64) - 1;
const HORIZON: u64 = WHEEL_SLOTS as u64;

/// A queued item: `(time, seq)` carries the total order, `item` rides along.
#[derive(Debug)]
pub struct Entry<T> {
    time: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Calendar queue: a timing wheel of per-nanosecond FIFO slots plus an
/// overflow heap for events beyond the horizon.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// `slots[time & WHEEL_MASK]`; within the horizon each slot holds events
    /// of exactly one timestamp, in insertion (= `seq`) order.
    slots: Vec<VecDeque<(u64, T)>>,
    /// One bit per slot: set iff the slot is nonempty. Scanned a word
    /// (64 slots) at a time to find the next occupied slot.
    occupied: Vec<u64>,
    /// Lower bound on every queued timestamp; the wheel maps times in
    /// `[cursor, cursor + HORIZON)`.
    cursor: u64,
    /// Events currently on the wheel.
    wheel_len: usize,
    /// Events at `time - cursor >= HORIZON` when scheduled.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
}

impl<T> CalendarQueue<T> {
    /// An empty queue with its wheel preallocated (slot buffers grow on
    /// first use and are then reused forever).
    pub fn new() -> Self {
        Self {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: vec![0; WHEEL_SLOTS / 64],
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Total queued events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queues `item` at `time`. `seq` must come from a single monotone
    /// counter shared by all pushes; `time` must be `>=` the timestamp of
    /// the last popped event (no scheduling into the past).
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        debug_assert!(time >= self.cursor, "scheduling into the past");
        if time - self.cursor >= HORIZON {
            self.overflow.push(Reverse(Entry { time, seq, item }));
        } else {
            let idx = (time & WHEEL_MASK) as usize;
            debug_assert!(self.slots[idx].iter().all(|(t, _)| *t == time));
            self.slots[idx].push_back((time, item));
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.wheel_len += 1;
        }
    }

    /// Removes and returns the earliest `(time, item)`, breaking timestamp
    /// ties by `seq` (see the module docs for why overflow wins ties).
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let wheel_time = self.next_wheel_time();
        let overflow_time = self.overflow.peek().map(|Reverse(e)| e.time);
        let take_overflow = match (wheel_time, overflow_time) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(tw), Some(to)) => to <= tw,
        };
        if take_overflow {
            let Reverse(e) = self.overflow.pop().expect("peeked nonempty");
            self.cursor = e.time;
            Some((e.time, e.item))
        } else {
            let tw = wheel_time.expect("wheel branch");
            self.cursor = tw;
            let idx = (tw & WHEEL_MASK) as usize;
            let (t, item) = self.slots[idx].pop_front().expect("occupied slot");
            debug_assert_eq!(t, tw);
            if self.slots[idx].is_empty() {
                self.occupied[idx / 64] &= !(1 << (idx % 64));
            }
            self.wheel_len -= 1;
            Some((tw, item))
        }
    }

    /// Timestamp of the earliest wheel event, scanning the occupancy bitmap
    /// from the cursor's slot. Every wheel event lies within one revolution
    /// of the cursor, so the first set bit found (cyclically) is the answer.
    fn next_wheel_time(&self) -> Option<u64> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.cursor & WHEEL_MASK) as usize;
        // First (partial) word: mask off bits below the cursor's slot.
        let mut word_idx = start / 64;
        let mut word = self.occupied[word_idx] & (!0u64 << (start % 64));
        let mut scanned = 0usize;
        loop {
            if word != 0 {
                let bit = word_idx * 64 + word.trailing_zeros() as usize;
                let dist = (bit + WHEEL_SLOTS - start) % WHEEL_SLOTS;
                return Some(self.cursor + dist as u64);
            }
            word_idx = (word_idx + 1) % (WHEEL_SLOTS / 64);
            word = self.occupied[word_idx];
            scanned += 64;
            debug_assert!(scanned <= WHEEL_SLOTS + 64, "bitmap scan overran");
        }
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// The simulator's event queue: one of the two schedulers, behind a common
/// push/pop interface. Both pop in `(time, seq)` order.
#[derive(Debug)]
pub enum EventQueue<T> {
    /// Binary-heap scheduler.
    Heap(BinaryHeap<Reverse<Entry<T>>>),
    /// Calendar-queue scheduler.
    Calendar(CalendarQueue<T>),
}

impl<T> EventQueue<T> {
    /// An empty queue using the scheduler `kind`.
    pub fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Heap => Self::Heap(BinaryHeap::new()),
            SchedulerKind::Calendar => Self::Calendar(CalendarQueue::new()),
        }
    }

    /// Queues `item` at `time` with monotone tie-break counter `seq`.
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        match self {
            Self::Heap(h) => h.push(Reverse(Entry { time, seq, item })),
            Self::Calendar(c) => c.push(time, seq, item),
        }
    }

    /// Removes and returns the earliest `(time, item)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        match self {
            Self::Heap(h) => h.pop().map(|Reverse(e)| (e.time, e.item)),
            Self::Calendar(c) => c.pop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Drives both schedulers with an identical push/pop schedule and
    /// asserts they emit identical `(time, item)` sequences. Delays span
    /// zero-delay, in-horizon and far-overflow cases; pops interleave with
    /// pushes the way a simulation's event loop does.
    #[test]
    fn calendar_matches_heap_order() {
        for seed in 0..8u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut heap = EventQueue::new(SchedulerKind::Heap);
            let mut cal = EventQueue::new(SchedulerKind::Calendar);
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut popped = 0usize;
            let mut pushed = 0usize;
            while popped < 20_000 {
                let burst = rng.gen_range(0..4);
                for _ in 0..burst {
                    let delay = match rng.gen_range(0..10) {
                        0 => 0,                                    // zero-delay reschedule
                        1..=6 => rng.gen_range(0..2_000),          // serialization/propagation
                        7 | 8 => rng.gen_range(2_000..HORIZON),    // timers within horizon
                        _ => rng.gen_range(HORIZON..20 * HORIZON), // overflow
                    };
                    seq += 1;
                    heap.push(now + delay, seq, seq);
                    cal.push(now + delay, seq, seq);
                    pushed += 1;
                }
                if pushed > popped {
                    let h = heap.pop().expect("heap nonempty");
                    let c = cal.pop().expect("calendar nonempty");
                    assert_eq!(h, c, "seed {seed}: divergence at pop {popped}");
                    assert!(h.0 >= now, "time went backwards");
                    now = h.0;
                    popped += 1;
                }
            }
            // Drain the rest — tails must match too.
            loop {
                let h = heap.pop();
                let c = cal.pop();
                assert_eq!(h, c, "seed {seed}: divergence in drain");
                if h.is_none() {
                    break;
                }
            }
        }
    }

    /// Overflow events must win timestamp ties: they were scheduled at a
    /// strictly earlier `now`, hence hold smaller `seq`.
    #[test]
    fn overflow_wins_timestamp_ties() {
        let mut q = CalendarQueue::new();
        let t = 2 * HORIZON; // beyond horizon as seen from cursor 0
        q.push(t, 1, "overflow");
        // Advance the cursor to within a horizon of `t`.
        q.push(t - 10, 2, "stepping stone");
        assert_eq!(q.pop(), Some((t - 10, "stepping stone")));
        // Now `t` is in-horizon; this lands on the wheel at the same time.
        q.push(t, 3, "wheel");
        assert_eq!(q.pop(), Some((t, "overflow")));
        assert_eq!(q.pop(), Some((t, "wheel")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    /// Same-slot FIFO: equal timestamps within the horizon pop in push
    /// (= seq) order.
    #[test]
    fn same_time_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..100u64 {
            q.push(42, i, i);
        }
        for i in 0..100u64 {
            assert_eq!(q.pop(), Some((42, i)));
        }
        assert_eq!(q.pop(), None);
    }

    /// An empty wheel with a far-future overflow event: the cursor jumps
    /// straight to the overflow head instead of stepping slot by slot.
    #[test]
    fn empty_wheel_jumps_to_overflow() {
        let mut q = CalendarQueue::new();
        q.push(10 * HORIZON + 3, 1, ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((10 * HORIZON + 3, ())));
        // After the jump the wheel window follows the new cursor.
        q.push(10 * HORIZON + 4, 2, ());
        assert_eq!(q.pop(), Some((10 * HORIZON + 4, ())));
    }

    /// Slot reuse across wheel revolutions: once drained, a slot accepts
    /// the same residue class one revolution later.
    #[test]
    fn wheel_wraps_cleanly() {
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for round in 0..5u64 {
            for k in 0..64u64 {
                seq += 1;
                q.push(round * HORIZON + k * 1000, seq, round * 1000 + k);
            }
            for k in 0..64u64 {
                let (t, item) = q.pop().expect("queued");
                assert_eq!(t, round * HORIZON + k * 1000);
                assert_eq!(item, round * 1000 + k);
                assert!(t >= now);
                now = t;
            }
        }
        assert!(q.is_empty());
    }
}
