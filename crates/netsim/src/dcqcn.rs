//! DCQCN reaction-point (sender) state machine.
//!
//! Implements the rate-based control loop of the DCQCN paper the evaluation
//! uses (§7.2 keeps "parameters consistent with the original paper"):
//!
//! * On CNP: `Rt ← Rc`, `Rc ← Rc · (1 − α/2)`, `α ← (1 − g)·α + g`, and the
//!   increase state machine restarts.
//! * Without CNPs, `α` decays every `alpha_timer_ns`: `α ← (1 − g)·α`.
//! * Rate increases fire on a timer (`rate_timer_ns`) or a byte counter
//!   (`byte_counter`), whichever first, stepping through fast recovery
//!   (`Rc ← (Rt + Rc)/2`), additive increase (`Rt += Rai`), and hyper
//!   increase (`Rt += Rhai`).

/// DCQCN parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcqcnParams {
    /// Line rate (and initial rate — RDMA flows start at full speed) in Gbps.
    pub line_rate_gbps: f64,
    /// Minimum sending rate in Gbps.
    pub min_rate_gbps: f64,
    /// EWMA gain `g` for α.
    pub g: f64,
    /// α decay / CNP-absence timer in ns (55 μs in the original paper).
    pub alpha_timer_ns: u64,
    /// Rate-increase timer period in ns (55 μs).
    pub rate_timer_ns: u64,
    /// Rate-increase byte counter threshold (10 MB).
    pub byte_counter: u64,
    /// Additive increase step in Gbps (40 Mbps).
    pub rai_gbps: f64,
    /// Hyper increase step in Gbps (400 Mbps).
    pub rhai_gbps: f64,
    /// Fast-recovery iterations before additive increase (F = 5).
    pub fast_recovery_rounds: u32,
    /// Minimum gap between CNPs honoured by the NP, in ns (50 μs).
    pub cnp_interval_ns: u64,
}

impl Default for DcqcnParams {
    fn default() -> Self {
        Self {
            line_rate_gbps: 100.0,
            min_rate_gbps: 0.1,
            g: 1.0 / 256.0,
            alpha_timer_ns: 55_000,
            rate_timer_ns: 55_000,
            byte_counter: 10 * 1024 * 1024,
            rai_gbps: 0.04,
            rhai_gbps: 0.4,
            fast_recovery_rounds: 5,
            cnp_interval_ns: 50_000,
        }
    }
}

/// Per-flow reaction-point state.
#[derive(Debug, Clone)]
pub struct DcqcnState {
    /// Current sending rate in Gbps.
    pub rc_gbps: f64,
    /// Target rate in Gbps.
    pub rt_gbps: f64,
    /// Congestion estimate α.
    pub alpha: f64,
    /// Successive timer-driven increase events since the last CNP.
    timer_rounds: u32,
    /// Successive byte-counter-driven increase events since the last CNP.
    byte_rounds: u32,
    /// Bytes sent since the last byte-counter increase.
    bytes_since_increase: u64,
    /// Generation counter: bumping invalidates in-flight timer events.
    pub generation: u64,
    /// True once a CNP has ever been received (before that, α stays put).
    saw_cnp: bool,
}

impl DcqcnState {
    /// Fresh state at line rate.
    pub fn new(params: &DcqcnParams) -> Self {
        Self {
            rc_gbps: params.line_rate_gbps,
            rt_gbps: params.line_rate_gbps,
            alpha: 1.0,
            timer_rounds: 0,
            byte_rounds: 0,
            bytes_since_increase: 0,
            generation: 0,
            saw_cnp: false,
        }
    }

    /// Handles a CNP: multiplicative decrease and state reset.
    pub fn on_cnp(&mut self, params: &DcqcnParams) {
        self.rt_gbps = self.rc_gbps;
        self.rc_gbps = (self.rc_gbps * (1.0 - self.alpha / 2.0)).max(params.min_rate_gbps);
        self.alpha = ((1.0 - params.g) * self.alpha + params.g).min(1.0);
        self.timer_rounds = 0;
        self.byte_rounds = 0;
        self.bytes_since_increase = 0;
        self.generation += 1;
        self.saw_cnp = true;
    }

    /// α decay on an idle alpha-timer expiry (no CNP in the period).
    pub fn on_alpha_timer(&mut self, params: &DcqcnParams) {
        if self.saw_cnp {
            self.alpha *= 1.0 - params.g;
        }
    }

    /// Accounts `bytes` sent; returns true if the byte counter tripped (the
    /// caller should then call [`Self::on_rate_increase`] with
    /// `by_timer = false`).
    pub fn on_bytes_sent(&mut self, bytes: u64, params: &DcqcnParams) -> bool {
        self.bytes_since_increase += bytes;
        if self.bytes_since_increase >= params.byte_counter {
            self.bytes_since_increase = 0;
            true
        } else {
            false
        }
    }

    /// One rate-increase event (timer- or byte-driven). Follows the DCQCN
    /// staging: fast recovery while `max(T, B) ≤ F`, hyper increase once
    /// `min(T, B) > F`, additive increase otherwise.
    pub fn on_rate_increase(&mut self, by_timer: bool, params: &DcqcnParams) {
        if by_timer {
            self.timer_rounds += 1;
        } else {
            self.byte_rounds += 1;
        }
        let t = self.timer_rounds;
        let b = self.byte_rounds;
        let f = params.fast_recovery_rounds;
        if t.max(b) <= f {
            // Fast recovery: halve toward the target.
        } else if t.min(b) > f {
            self.rt_gbps = (self.rt_gbps + params.rhai_gbps).min(params.line_rate_gbps);
        } else {
            self.rt_gbps = (self.rt_gbps + params.rai_gbps).min(params.line_rate_gbps);
        }
        self.rc_gbps = ((self.rt_gbps + self.rc_gbps) / 2.0).min(params.line_rate_gbps);
    }

    /// Nanoseconds to serialize `bytes` at the current rate.
    pub fn pacing_delay_ns(&self, bytes: u32) -> u64 {
        let ns = bytes as f64 * 8.0 / self.rc_gbps;
        (ns.ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DcqcnParams {
        DcqcnParams::default()
    }

    #[test]
    fn flows_start_at_line_rate() {
        let s = DcqcnState::new(&params());
        assert_eq!(s.rc_gbps, 100.0);
        assert_eq!(s.alpha, 1.0);
    }

    #[test]
    fn first_cnp_halves_the_rate() {
        let p = params();
        let mut s = DcqcnState::new(&p);
        s.on_cnp(&p);
        // α = 1 → Rc · (1 − 0.5) = 50.
        assert!((s.rc_gbps - 50.0).abs() < 1e-9);
        assert!((s.rt_gbps - 100.0).abs() < 1e-9);
        assert!(s.alpha <= 1.0);
    }

    #[test]
    fn repeated_cnps_respect_min_rate() {
        let p = params();
        let mut s = DcqcnState::new(&p);
        for _ in 0..200 {
            s.on_cnp(&p);
        }
        assert!(s.rc_gbps >= p.min_rate_gbps - 1e-12);
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let p = params();
        let mut s = DcqcnState::new(&p);
        s.on_cnp(&p);
        let a0 = s.alpha;
        s.on_alpha_timer(&p);
        assert!(s.alpha < a0);
    }

    #[test]
    fn alpha_does_not_decay_before_any_cnp() {
        let p = params();
        let mut s = DcqcnState::new(&p);
        s.on_alpha_timer(&p);
        assert_eq!(s.alpha, 1.0);
    }

    #[test]
    fn fast_recovery_converges_to_target() {
        let p = params();
        let mut s = DcqcnState::new(&p);
        s.on_cnp(&p); // Rc 50, Rt 100
        for _ in 0..p.fast_recovery_rounds {
            s.on_rate_increase(true, &p);
        }
        // 50 → 75 → 87.5 → 93.75 → 96.875 → 98.4375
        assert!(s.rc_gbps > 98.0 && s.rc_gbps < 100.0);
        assert!(
            (s.rt_gbps - 100.0).abs() < 1e-9,
            "fast recovery must not move Rt"
        );
    }

    #[test]
    fn additive_then_hyper_increase_raise_target() {
        let p = params();
        let mut s = DcqcnState::new(&p);
        s.on_cnp(&p);
        for _ in 0..p.fast_recovery_rounds + 1 {
            s.on_rate_increase(true, &p);
        }
        // Timer rounds beyond F with byte rounds still ≤ F → additive.
        let rt_after_ai = s.rt_gbps;
        assert!(rt_after_ai <= 100.0);
        // Drive byte rounds past F too → hyper increase.
        for _ in 0..p.fast_recovery_rounds + 1 {
            s.on_rate_increase(false, &p);
        }
        let before = s.rt_gbps;
        s.on_rate_increase(false, &p);
        assert!((s.rt_gbps - before - p.rhai_gbps).abs() < 1e-9 || s.rt_gbps == 100.0);
    }

    #[test]
    fn rate_never_exceeds_line_rate() {
        let p = params();
        let mut s = DcqcnState::new(&p);
        s.on_cnp(&p);
        for i in 0..1000 {
            s.on_rate_increase(i % 2 == 0, &p);
            assert!(s.rc_gbps <= p.line_rate_gbps + 1e-9);
            assert!(s.rt_gbps <= p.line_rate_gbps + 1e-9);
        }
    }

    #[test]
    fn byte_counter_trips_every_threshold() {
        let p = params();
        let mut s = DcqcnState::new(&p);
        let mut trips = 0;
        for _ in 0..30 {
            if s.on_bytes_sent(1024 * 1024, &p) {
                trips += 1;
            }
        }
        assert_eq!(trips, 3); // 30 MB / 10 MB
    }

    #[test]
    fn pacing_delay_matches_rate() {
        let p = params();
        let mut s = DcqcnState::new(&p);
        assert_eq!(s.pacing_delay_ns(1000), 80); // 100 Gbps
        s.rc_gbps = 10.0;
        assert_eq!(s.pacing_delay_ns(1000), 800);
    }

    #[test]
    fn cnp_bumps_generation_to_cancel_stale_timers() {
        let p = params();
        let mut s = DcqcnState::new(&p);
        let g0 = s.generation;
        s.on_cnp(&p);
        assert_eq!(s.generation, g0 + 1);
    }
}
