#![warn(missing_docs)]

//! # umon-netsim — deterministic packet-level data-center network simulator
//!
//! The evaluation substrate for the μMon reproduction (the paper used NS-3,
//! §7 Setup): a discrete-event, packet-level simulator of a data-center
//! fabric with
//!
//! * fat-tree and dumbbell topologies ([`topology`]),
//! * output-queued switches with RED/ECN marking at DCQCN thresholds
//!   ([`queue`]),
//! * DCQCN rate-based congestion control with CNP feedback ([`dcqcn`]) and a
//!   DCTCP-style window-based variant ([`dctcp`]),
//! * per-flow pacing hosts ([`sim`]), and
//! * ground-truth telemetry taps ([`telemetry`]): per-flow egress byte
//!   counts per microsecond window, CE-marked packet records (the μEvent
//!   mirror candidates), queue-length episodes and time-weighted queue
//!   distributions.
//!
//! Everything is seeded and deterministic: the same [`sim::SimConfig`] and
//! flow list reproduce the same packet trace bit-for-bit — on one thread or
//! many: [`parallel::run_parallel`] shards the topology into logical
//! processes (one per fat-tree pod plus the core, [`partition`]) under
//! conservative lookahead sync and produces bit-identical results to
//! [`sim::Simulator::run`] for any seed and partition count.
//!
//! The sequential simulator is synchronous and event-driven — a CPU-bound
//! workload with no blocking I/O, hence no async runtime (see DESIGN.md §5);
//! the parallel runner uses scoped OS threads with parking barriers, not an
//! async runtime, for the same reason.

pub mod dcqcn;
pub mod dctcp;
pub mod failure;
pub mod packet;
pub mod parallel;
pub mod partition;
pub mod queue;
pub mod sched;
pub mod sim;
pub mod telemetry;
pub mod topology;
pub mod trace;

pub use failure::{FailureEvent, FailureSchedule};
pub use packet::{EcnCodepoint, FlowId, Packet, PacketKind};
pub use parallel::run_parallel;
pub use partition::{PartitionError, PartitionPlan};
pub use queue::{EcnConfig, OutPort};
pub use sched::{CalendarQueue, SchedulerKind};
pub use sim::{CongestionControl, FlowSpec, PfcConfig, SimConfig, SimResult, Simulator};
pub use telemetry::{
    BurstRecord, ClockModel, DropRecord, LinkRecord, MirrorCandidate, PauseRecord, QueueEpisode,
    Telemetry, TxRecord,
};
pub use topology::{NodeId, PortId, Topology};
