//! A DCTCP-style window-based sender, used for the TCP-flow use cases
//! (Figure 9a) and for generating ECN-reactive windowed traffic.
//!
//! This is the textbook DCTCP control law on top of per-packet ACK clocking:
//! the sender keeps an EWMA `α` of the fraction of ECN-echo ACKs per window
//! and once per window cuts `cwnd ← cwnd · (1 − α/2)` if any mark was seen;
//! otherwise it grows by slow start or one MSS per window.

/// DCTCP parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DctcpParams {
    /// EWMA gain for α (1/16 in the DCTCP paper).
    pub g: f64,
    /// Initial congestion window in packets.
    pub init_cwnd: f64,
    /// Slow-start threshold in packets.
    pub init_ssthresh: f64,
    /// Maximum window in packets (receiver/buffer bound).
    pub max_cwnd: f64,
}

impl Default for DctcpParams {
    fn default() -> Self {
        Self {
            g: 1.0 / 16.0,
            init_cwnd: 10.0,
            init_ssthresh: 256.0,
            max_cwnd: 512.0,
        }
    }
}

/// Per-flow DCTCP sender state.
#[derive(Debug, Clone)]
pub struct DctcpState {
    /// Congestion window in packets (fractional growth allowed).
    pub cwnd: f64,
    /// Slow-start threshold in packets.
    pub ssthresh: f64,
    /// EWMA of the marked fraction.
    pub alpha: f64,
    /// Next sequence number to send.
    pub next_seq: u64,
    /// Highest cumulative ACK received.
    pub acked: u64,
    /// Window-observation state: end of the current observation window.
    window_end: u64,
    /// ACKs and marks observed in the current window.
    acks_in_window: u64,
    marks_in_window: u64,
}

impl DctcpState {
    /// Fresh state.
    pub fn new(params: &DctcpParams) -> Self {
        Self {
            cwnd: params.init_cwnd,
            ssthresh: params.init_ssthresh,
            alpha: 0.0,
            next_seq: 0,
            acked: 0,
            window_end: 0,
            acks_in_window: 0,
            marks_in_window: 0,
        }
    }

    /// Packets currently allowed in flight.
    pub fn in_flight_budget(&self) -> u64 {
        let inflight = self.next_seq.saturating_sub(self.acked);
        (self.cwnd.floor() as u64).saturating_sub(inflight)
    }

    /// Handles a cumulative ACK for `ack_seq` with ECN echo `ece`.
    ///
    /// Window accounting follows DCTCP: once a full window of ACKs has been
    /// observed (the ACK passes `window_end`), α updates and the window cut
    /// (if marks were seen) applies.
    pub fn on_ack(&mut self, ack_seq: u64, ece: bool, params: &DctcpParams) {
        if ack_seq <= self.acked {
            return; // duplicate / stale
        }
        let newly = ack_seq - self.acked;
        self.acked = ack_seq;
        self.acks_in_window += newly;
        if ece {
            self.marks_in_window += newly;
        }

        // Per-ACK growth.
        if self.cwnd < self.ssthresh {
            self.cwnd = (self.cwnd + newly as f64).min(params.max_cwnd);
        } else {
            self.cwnd = (self.cwnd + newly as f64 / self.cwnd).min(params.max_cwnd);
        }

        if ack_seq >= self.window_end {
            // One observation window complete.
            let frac = if self.acks_in_window > 0 {
                self.marks_in_window as f64 / self.acks_in_window as f64
            } else {
                0.0
            };
            self.alpha = (1.0 - params.g) * self.alpha + params.g * frac;
            if self.marks_in_window > 0 {
                self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(1.0);
                self.ssthresh = self.cwnd;
            }
            self.acks_in_window = 0;
            self.marks_in_window = 0;
            self.window_end = self.next_seq;
        }
    }

    /// Registers that packet `seq` was handed to the NIC.
    pub fn on_send(&mut self, seq: u64) {
        debug_assert_eq!(seq, self.next_seq);
        self.next_seq = seq + 1;
        if self.window_end == 0 {
            self.window_end = self.next_seq;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DctcpParams {
        DctcpParams::default()
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let p = params();
        let mut s = DctcpState::new(&p);
        // Send and ACK ten packets without marks: cwnd 10 → 20.
        for i in 0..10 {
            s.on_send(i);
        }
        for i in 0..10 {
            s.on_ack(i + 1, false, &p);
        }
        assert!((s.cwnd - 20.0).abs() < 1e-9);
        assert_eq!(s.alpha, 0.0);
    }

    #[test]
    fn marks_update_alpha_and_cut_window() {
        let p = params();
        let mut s = DctcpState::new(&p);
        for i in 0..10 {
            s.on_send(i);
        }
        // Half the ACKs carry ECN echo.
        for i in 0..10 {
            s.on_ack(i + 1, i % 2 == 0, &p);
        }
        assert!(s.alpha > 0.0, "alpha must rise after marks");
        assert!(s.cwnd < 20.0, "window must be cut below pure slow start");
        assert_eq!(s.ssthresh, s.cwnd);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let p = DctcpParams {
            init_cwnd: 100.0,
            init_ssthresh: 1.0, // force CA
            ..params()
        };
        let mut s = DctcpState::new(&p);
        for i in 0..100 {
            s.on_send(i);
        }
        for i in 0..100 {
            s.on_ack(i + 1, false, &p);
        }
        // ~1 MSS growth over a full window.
        assert!(s.cwnd > 100.9 && s.cwnd < 102.1, "cwnd {}", s.cwnd);
    }

    #[test]
    fn budget_respects_inflight() {
        let p = params();
        let mut s = DctcpState::new(&p);
        assert_eq!(s.in_flight_budget(), 10);
        for i in 0..10 {
            s.on_send(i);
        }
        assert_eq!(s.in_flight_budget(), 0);
        s.on_ack(4, false, &p);
        assert!(s.in_flight_budget() > 0);
    }

    #[test]
    fn duplicate_acks_are_ignored() {
        let p = params();
        let mut s = DctcpState::new(&p);
        for i in 0..5 {
            s.on_send(i);
        }
        s.on_ack(3, false, &p);
        let cwnd = s.cwnd;
        s.on_ack(3, true, &p);
        assert_eq!(s.cwnd, cwnd);
        assert_eq!(s.acked, 3);
    }

    #[test]
    fn window_never_collapses_below_one() {
        let p = params();
        let mut s = DctcpState::new(&p);
        s.alpha = 1.0;
        for round in 0..50u64 {
            let seq = s.next_seq;
            s.on_send(seq);
            s.on_ack(seq + 1, true, &p);
            let _ = round;
            assert!(s.cwnd >= 1.0);
        }
    }
}
