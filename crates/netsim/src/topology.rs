//! Network topologies: generic node/link/port graph with routing tables,
//! plus the two builders used in the evaluation — a k-ary fat-tree (the
//! paper's k=4, §7 Setup) and a dumbbell (single bottleneck, testbed-like).

/// A node index. Hosts occupy `0..num_hosts`; switches follow.
pub type NodeId = usize;
/// A port index local to a node.
pub type PortId = usize;

/// One duplex link between two (node, port) endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// First endpoint.
    pub a: (NodeId, PortId),
    /// Second endpoint.
    pub b: (NodeId, PortId),
    /// Bandwidth in gigabits per second.
    pub bandwidth_gbps: f64,
    /// One-way propagation latency in nanoseconds.
    pub latency_ns: u64,
}

impl Link {
    /// Transmission time of `bytes` on this link in nanoseconds (rounded up,
    /// minimum 1 ns so events always advance).
    pub fn tx_time_ns(&self, bytes: u32) -> u64 {
        let ns = (bytes as f64 * 8.0) / self.bandwidth_gbps;
        (ns.ceil() as u64).max(1)
    }

    /// The peer endpoint of `(node, port)`.
    pub fn peer(&self, node: NodeId) -> (NodeId, PortId) {
        if self.a.0 == node {
            self.b
        } else {
            self.a
        }
    }
}

/// A network graph with per-switch routing tables.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Number of hosts (nodes `0..num_hosts`).
    pub num_hosts: usize,
    /// Number of switches (nodes `num_hosts..num_hosts+num_switches`).
    pub num_switches: usize,
    /// All links.
    pub links: Vec<Link>,
    /// `port_link[node][port]` = index into `links`.
    port_link: Vec<Vec<usize>>,
    /// `routes[switch][dst_host]` = candidate egress ports (ECMP set).
    routes: Vec<Vec<Vec<PortId>>>,
    /// `zones[node]` = partition zone: a builder-assigned locality group
    /// (fat-tree: one zone per pod plus one for the core layer; dumbbell:
    /// left/right halves). The parallel simulator maps zones onto logical
    /// processes; nodes in one zone never split across partitions, so the
    /// dense intra-pod traffic stays partition-local.
    zones: Vec<usize>,
}

impl Topology {
    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.num_hosts + self.num_switches
    }

    /// True if `node` is a host.
    pub fn is_host(&self, node: NodeId) -> bool {
        node < self.num_hosts
    }

    /// Ports on `node`.
    pub fn ports(&self, node: NodeId) -> usize {
        self.port_link[node].len()
    }

    /// The link attached to `(node, port)`.
    pub fn link_at(&self, node: NodeId, port: PortId) -> &Link {
        &self.links[self.port_link[node][port]]
    }

    /// Picks the egress port at `switch` toward `dst_host` for a flow with
    /// ECMP hash `flow_hash` (per-flow, not per-packet, so flows never
    /// reorder).
    pub fn route(&self, switch: NodeId, dst_host: NodeId, flow_hash: u64) -> PortId {
        let sw = switch - self.num_hosts;
        let candidates = &self.routes[sw][dst_host];
        assert!(
            !candidates.is_empty(),
            "no route from switch {switch} to host {dst_host}"
        );
        candidates[(flow_hash % candidates.len() as u64) as usize]
    }

    /// ECMP candidate count (for tests).
    pub fn route_candidates(&self, switch: NodeId, dst_host: NodeId) -> usize {
        self.routes[switch - self.num_hosts][dst_host].len()
    }

    /// The partition zone of `node` (see the `zones` field).
    pub fn zone(&self, node: NodeId) -> usize {
        self.zones[node]
    }

    /// Number of distinct partition zones. Topologies built by
    /// [`Topology::from_edges`] directly have a single zone (no parallelism
    /// available); the fat-tree and dumbbell builders assign finer zones.
    pub fn num_zones(&self) -> usize {
        self.zones.iter().copied().max().unwrap_or(0) + 1
    }

    /// Generic constructor from an edge list. `edges` entries are
    /// `(node_a, node_b, bandwidth_gbps, latency_ns)`; ports are assigned in
    /// order of appearance. Routing tables are built by BFS over hop count,
    /// keeping every minimal-hop egress as an ECMP candidate.
    pub fn from_edges(
        num_hosts: usize,
        num_switches: usize,
        edges: &[(NodeId, NodeId, f64, u64)],
    ) -> Self {
        let num_nodes = num_hosts + num_switches;
        let mut links = Vec::with_capacity(edges.len());
        let mut port_link: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
        for &(a, b, bw, lat) in edges {
            assert!(a < num_nodes && b < num_nodes, "edge endpoint out of range");
            let pa = port_link[a].len();
            let pb = port_link[b].len();
            let idx = links.len();
            links.push(Link {
                a: (a, pa),
                b: (b, pb),
                bandwidth_gbps: bw,
                latency_ns: lat,
            });
            port_link[a].push(idx);
            port_link[b].push(idx);
        }

        // BFS from every host to get hop distances, then each switch keeps
        // all neighbors one hop closer to the destination host.
        let neighbors = |node: NodeId| -> Vec<(NodeId, PortId)> {
            port_link[node]
                .iter()
                .enumerate()
                .map(|(port, &l)| (links[l].peer(node).0, port))
                .collect()
        };
        let mut routes = vec![vec![Vec::new(); num_hosts]; num_switches];
        for dst in 0..num_hosts {
            let mut dist = vec![usize::MAX; num_nodes];
            dist[dst] = 0;
            let mut frontier = std::collections::VecDeque::from([dst]);
            while let Some(n) = frontier.pop_front() {
                for (peer, _) in neighbors(n) {
                    if dist[peer] == usize::MAX {
                        dist[peer] = dist[n] + 1;
                        frontier.push_back(peer);
                    }
                }
            }
            for (sw, route) in routes.iter_mut().enumerate() {
                let node = num_hosts + sw;
                if dist[node] == usize::MAX {
                    continue;
                }
                for (peer, port) in neighbors(node) {
                    if dist[peer] + 1 == dist[node] {
                        route[dst].push(port);
                    }
                }
            }
        }

        Self {
            num_hosts,
            num_switches,
            links,
            port_link,
            routes,
            zones: vec![0; num_nodes],
        }
    }

    /// A k-ary fat-tree: `k²/4` core switches, `k` pods of `k/2` aggregation
    /// and `k/2` edge switches, `k/2` hosts per edge switch — for k=4 this is
    /// the paper's 16-host, 20-switch fabric. All links share `bw_gbps` and
    /// `latency_ns` (paper: 100 Gbps, 1 μs per hop).
    pub fn fat_tree(k: usize, bw_gbps: f64, latency_ns: u64) -> Self {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree requires even k >= 2"
        );
        let half = k / 2;
        let num_hosts = k * k * k / 4;
        let num_edge = k * half;
        let num_agg = k * half;
        let num_core = half * half;
        let num_switches = num_edge + num_agg + num_core;

        // Node layout: hosts, then edge, agg, core switches.
        let edge = |pod: usize, i: usize| num_hosts + pod * half + i;
        let agg = |pod: usize, i: usize| num_hosts + num_edge + pod * half + i;
        let core = |i: usize, j: usize| num_hosts + num_edge + num_agg + i * half + j;

        let mut edges = Vec::new();
        for pod in 0..k {
            for e in 0..half {
                // Hosts under this edge switch.
                for h in 0..half {
                    let host = pod * half * half + e * half + h;
                    edges.push((host, edge(pod, e), bw_gbps, latency_ns));
                }
                // Edge ↔ every aggregation switch in the pod.
                for a in 0..half {
                    edges.push((edge(pod, e), agg(pod, a), bw_gbps, latency_ns));
                }
            }
            // Aggregation ↔ core: agg switch `a` connects to core row `a`.
            for a in 0..half {
                for j in 0..half {
                    edges.push((agg(pod, a), core(a, j), bw_gbps, latency_ns));
                }
            }
        }
        let mut topo = Self::from_edges(num_hosts, num_switches, &edges);
        // Zones: one per pod (its hosts + edge + agg switches), plus a
        // dedicated zone `k` for the core layer. Pod-local traffic — the
        // bulk of every workload — never crosses a zone boundary.
        for pod in 0..k {
            for e in 0..half {
                for h in 0..half {
                    topo.zones[pod * half * half + e * half + h] = pod;
                }
                topo.zones[edge(pod, e)] = pod;
            }
            for a in 0..half {
                topo.zones[agg(pod, a)] = pod;
            }
        }
        for i in 0..half {
            for j in 0..half {
                topo.zones[core(i, j)] = k;
            }
        }
        topo
    }

    /// A dumbbell: `n` sender hosts and `n` receiver hosts joined by two
    /// switches with a single bottleneck link between them. Used for the
    /// testbed-style single-bottleneck experiments (Figures 1, 9, 13).
    pub fn dumbbell(n: usize, bw_gbps: f64, latency_ns: u64) -> Self {
        let num_hosts = 2 * n;
        let left = num_hosts;
        let right = num_hosts + 1;
        let mut edges = Vec::new();
        for h in 0..n {
            edges.push((h, left, bw_gbps, latency_ns));
        }
        for h in n..2 * n {
            edges.push((h, right, bw_gbps, latency_ns));
        }
        edges.push((left, right, bw_gbps, latency_ns));
        let mut topo = Self::from_edges(num_hosts, 2, &edges);
        // Zones: senders + left switch vs receivers + right switch. The
        // only cut link is the bottleneck itself.
        for h in n..2 * n {
            topo.zones[h] = 1;
        }
        topo.zones[right] = 1;
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_k4_has_paper_dimensions() {
        let t = Topology::fat_tree(4, 100.0, 1000);
        assert_eq!(t.num_hosts, 16);
        assert_eq!(t.num_switches, 20); // 8 edge + 8 agg + 4 core
                                        // k=4: each host 1 port; edge switches 4 ports; total links:
                                        // 16 host + 8 edge×2 agg... = 16 + 16 + 16 = 48.
        assert_eq!(t.links.len(), 48);
    }

    #[test]
    fn fat_tree_k4_port_counts_per_node() {
        let t = Topology::fat_tree(4, 100.0, 1000);
        for h in 0..t.num_hosts {
            assert_eq!(t.ports(h), 1, "host {h} has a single uplink");
        }
        for sw in t.num_hosts..t.num_nodes() {
            assert_eq!(t.ports(sw), 4, "switch {sw} must have k = 4 ports");
        }
        // Port/link consistency: every (node, port) maps to a link that
        // names that exact endpoint.
        for node in 0..t.num_nodes() {
            for port in 0..t.ports(node) {
                let l = t.link_at(node, port);
                assert!(
                    l.a == (node, port) || l.b == (node, port),
                    "link at ({node}, {port}) does not reference it"
                );
            }
        }
    }

    #[test]
    fn fat_tree_link_count_is_3k3_over_4() {
        for k in [2usize, 4, 6, 8] {
            let t = Topology::fat_tree(k, 100.0, 1000);
            assert_eq!(t.links.len(), 3 * k * k * k / 4, "k={k}");
        }
    }

    #[test]
    fn fat_tree_routes_use_ecmp_across_pods() {
        let t = Topology::fat_tree(4, 100.0, 1000);
        // From an edge switch to a host in another pod there are 2 agg
        // choices (ECMP), from agg 2 core choices.
        let edge0 = 16; // first edge switch (pod 0)
        assert_eq!(
            t.route_candidates(edge0, 15),
            2,
            "edge→remote host via 2 aggs"
        );
        // Same-rack host: single downlink.
        assert_eq!(t.route_candidates(edge0, 0), 1);
    }

    #[test]
    fn routing_reaches_every_host_from_every_switch() {
        let t = Topology::fat_tree(4, 100.0, 1000);
        for sw in t.num_hosts..t.num_nodes() {
            for dst in 0..t.num_hosts {
                let port = t.route(sw, dst, 12345);
                assert!(port < t.ports(sw));
            }
        }
    }

    #[test]
    fn ecmp_is_flow_stable() {
        let t = Topology::fat_tree(4, 100.0, 1000);
        let p1 = t.route(16, 15, 777);
        let p2 = t.route(16, 15, 777);
        assert_eq!(p1, p2);
    }

    #[test]
    fn fat_tree_path_lengths_are_correct() {
        // Same rack: host→edge→host (2 links). Cross-pod: 6 links.
        let t = Topology::fat_tree(4, 100.0, 1000);
        // Walk a packet's path manually from host 0 to host 1 (same rack).
        let hops = walk(&t, 0, 1, 99);
        assert_eq!(hops, vec![16usize]); // single edge switch between them
        let hops = walk(&t, 0, 15, 99);
        assert_eq!(hops.len(), 5, "cross-pod path crosses 5 switches: {hops:?}");
    }

    /// Follows routing from `src` to `dst`, returning switches visited.
    fn walk(t: &Topology, src: NodeId, dst: NodeId, hash: u64) -> Vec<NodeId> {
        let mut visited = Vec::new();
        // Host egress: its only port.
        let mut link = t.link_at(src, 0);
        let mut node = link.peer(src).0;
        let mut guard = 0;
        while node != dst {
            visited.push(node);
            let port = t.route(node, dst, hash);
            link = t.link_at(node, port);
            node = link.peer(node).0;
            guard += 1;
            assert!(guard < 10, "routing loop");
        }
        visited
    }

    #[test]
    fn dumbbell_shape() {
        let t = Topology::dumbbell(3, 40.0, 500);
        assert_eq!(t.num_hosts, 6);
        assert_eq!(t.num_switches, 2);
        assert_eq!(t.links.len(), 7);
        // Sender 0 → receiver 4 passes both switches.
        let hops = walk(&t, 0, 4, 5);
        assert_eq!(hops, vec![6, 7]);
    }

    #[test]
    fn tx_time_rounds_up_and_scales() {
        let l = Link {
            a: (0, 0),
            b: (1, 0),
            bandwidth_gbps: 100.0,
            latency_ns: 1000,
        };
        // 1000 B at 100 Gbps = 80 ns.
        assert_eq!(l.tx_time_ns(1000), 80);
        // 64 B = 5.12 ns → rounds to 6.
        assert_eq!(l.tx_time_ns(64), 6);
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn odd_k_rejected() {
        Topology::fat_tree(3, 100.0, 1000);
    }

    #[test]
    fn larger_fat_trees_have_the_canonical_dimensions() {
        for k in [6usize, 8] {
            let t = Topology::fat_tree(k, 100.0, 1000);
            assert_eq!(t.num_hosts, k * k * k / 4, "k={k} hosts");
            assert_eq!(t.num_switches, k * k + k * k / 4, "k={k} switches");
            // Every host reaches every other host.
            let samples = [(0usize, t.num_hosts - 1), (1, t.num_hosts / 2)];
            for (src, dst) in samples {
                let hops = walk(&t, src, dst, 7);
                assert!(hops.len() <= 5, "k={k}: path {hops:?} too long");
            }
        }
    }

    #[test]
    fn k8_cross_pod_ecmp_width() {
        // k=8: 4 aggregation choices at the edge, 4 core choices per agg.
        let t = Topology::fat_tree(8, 100.0, 1000);
        let first_edge = t.num_hosts;
        let remote_host = t.num_hosts - 1;
        assert_eq!(t.route_candidates(first_edge, remote_host), 4);
    }

    #[test]
    fn fat_tree_zones_follow_pods_plus_core() {
        let t = Topology::fat_tree(4, 100.0, 1000);
        assert_eq!(t.num_zones(), 5); // 4 pods + core
        for host in 0..16 {
            assert_eq!(t.zone(host), host / 4, "host {host} zone follows pod");
        }
        // Edge and agg switches share their pod's zone.
        for pod in 0..4 {
            for i in 0..2 {
                assert_eq!(t.zone(16 + pod * 2 + i), pod, "edge zone");
                assert_eq!(t.zone(24 + pod * 2 + i), pod, "agg zone");
            }
        }
        // Core switches form their own zone.
        for c in 32..36 {
            assert_eq!(t.zone(c), 4, "core zone");
        }
    }

    #[test]
    fn dumbbell_zones_split_at_the_bottleneck() {
        let t = Topology::dumbbell(2, 100.0, 1000);
        assert_eq!(t.num_zones(), 2);
        assert_eq!((t.zone(0), t.zone(1)), (0, 0));
        assert_eq!((t.zone(2), t.zone(3)), (1, 1));
        assert_eq!((t.zone(4), t.zone(5)), (0, 1)); // left/right switches
    }

    #[test]
    fn from_edges_topologies_are_single_zone() {
        let t = Topology::from_edges(2, 1, &[(0, 2, 10.0, 100), (1, 2, 10.0, 100)]);
        assert_eq!(t.num_zones(), 1);
    }

    #[test]
    fn all_fat_tree_links_share_configured_parameters() {
        let t = Topology::fat_tree(4, 40.0, 500);
        for l in &t.links {
            assert_eq!(l.bandwidth_gbps, 40.0);
            assert_eq!(l.latency_ns, 500);
        }
    }
}
