//! Deterministic fabric failure injection: link flaps and forced PFC pause
//! storms, scheduled ahead of time and driven through the ordinary event
//! queue so a seeded run replays bit-for-bit.
//!
//! ## Model
//!
//! * A **link flap** takes the duplex link at `(node, port)` down at
//!   `down_ns` and back up at `up_ns`. While down, neither endpoint starts a
//!   new serialization on that link; a packet whose serialization completes
//!   while the link is down is lost on the wire (counted in
//!   [`Telemetry::link_losses`](crate::telemetry::Telemetry::link_losses),
//!   and reported as a [`DropRecord`](crate::telemetry::DropRecord) when
//!   deflect-on-drop is enabled). Packets already propagating when the link
//!   fails still arrive — the cut severs the transmitter, not photons in
//!   flight. Queued packets wait out the outage and resume on link-up.
//! * A **pause storm** forces `cycles` XOFF/XON pairs onto `(node, port)`
//!   through the exact PFC machinery organic congestion uses, so pause
//!   refcounting, serializer gating and [`PauseRecord`] telemetry behave
//!   identically. Injected records are distinguishable: their
//!   `triggered_by` equals the paused node itself, which organic PFC can
//!   never produce (a switch always pauses its *neighbors*).
//!
//! Schedules are plain data — generation (with seeds, jitter and
//! non-overlap guarantees) lives in `umon-workloads`. The simulator
//! validates on construction that no two events overlap on the same
//! physical link, because overlapping flaps on a boolean link state would
//! not compose.
//!
//! [`PauseRecord`]: crate::telemetry::PauseRecord

use crate::topology::{NodeId, PortId, Topology};

/// One scheduled fabric failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureEvent {
    /// The duplex link at `(node, port)` is down during `[down_ns, up_ns)`.
    LinkFlap {
        /// Either endpoint of the link.
        node: NodeId,
        /// The port on that endpoint.
        port: PortId,
        /// True time the link fails, ns.
        down_ns: u64,
        /// True time the link recovers, ns (exclusive; must be > `down_ns`).
        up_ns: u64,
    },
    /// `cycles` forced XOFF/XON pairs at `(node, port)`: cycle `c` pauses
    /// during `[start + c·(pause+gap), start + c·(pause+gap) + pause)`.
    PauseStorm {
        /// The node whose egress port is paused.
        node: NodeId,
        /// The paused port.
        port: PortId,
        /// True time of the first XOFF, ns.
        start_ns: u64,
        /// Number of XOFF/XON pairs (must be ≥ 1).
        cycles: u32,
        /// Paused duration per cycle, ns (must be ≥ 1).
        pause_ns: u64,
        /// Idle gap between cycles, ns.
        gap_ns: u64,
    },
}

impl FailureEvent {
    /// The `(node, port)` endpoint this event names.
    pub fn endpoint(&self) -> (NodeId, PortId) {
        match *self {
            FailureEvent::LinkFlap { node, port, .. }
            | FailureEvent::PauseStorm { node, port, .. } => (node, port),
        }
    }

    /// The half-open active interval `[start, end)` of the event in ns.
    pub fn interval(&self) -> (u64, u64) {
        match *self {
            FailureEvent::LinkFlap { down_ns, up_ns, .. } => (down_ns, up_ns),
            FailureEvent::PauseStorm {
                start_ns,
                cycles,
                pause_ns,
                gap_ns,
                ..
            } => {
                let period = pause_ns + gap_ns;
                // Last cycle ends after its pause, without the trailing gap.
                let end = start_ns + (cycles as u64).saturating_sub(1) * period + pause_ns;
                (start_ns, end)
            }
        }
    }
}

/// An ordered set of failure events for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureSchedule {
    /// The events, in no particular order.
    pub events: Vec<FailureEvent>,
}

impl FailureSchedule {
    /// An empty schedule (no failures — the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// True if the schedule holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks structural validity against a topology: every endpoint exists,
    /// intervals are non-degenerate, and no two events overlap in time on
    /// the same physical link (both directions of a duplex link count as
    /// one link). Returns the first violation as a message.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        let mut spans: Vec<((NodeId, PortId), u64, u64)> = Vec::with_capacity(self.events.len());
        for ev in &self.events {
            let (node, port) = ev.endpoint();
            if node >= topo.num_nodes() || port >= topo.ports(node) {
                return Err(format!("failure event names missing port ({node}, {port})"));
            }
            let (start, end) = ev.interval();
            if end <= start {
                return Err(format!(
                    "failure event at ({node}, {port}) has empty interval"
                ));
            }
            match ev {
                FailureEvent::PauseStorm {
                    cycles, pause_ns, ..
                } => {
                    if *cycles == 0 || *pause_ns == 0 {
                        return Err(format!(
                            "pause storm at ({node}, {port}) needs cycles >= 1 and pause_ns >= 1"
                        ));
                    }
                }
                FailureEvent::LinkFlap { .. } => {}
            }
            // Canonical link key: the lexicographically smaller endpoint of
            // the duplex link, so flaps named from either side collide.
            let link = topo.link_at(node, port);
            let key = link.a.min(link.b);
            spans.push((key, start, end));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            let ((k0, _s0, e0), (k1, s1, _e1)) = (w[0], w[1]);
            if k0 == k1 && s1 < e0 {
                return Err(format!(
                    "overlapping failure events on link at ({}, {})",
                    k0.0, k0.1
                ));
            }
        }
        Ok(())
    }

    /// True if two events overlap in time on the same named endpoint
    /// (topology-free check used by schedule generators before a topology
    /// exists; [`validate`](Self::validate) is the authoritative check).
    pub fn has_endpoint_overlap(&self) -> bool {
        let mut spans: Vec<((NodeId, PortId), u64, u64)> = self
            .events
            .iter()
            .map(|ev| {
                let (s, e) = ev.interval();
                (ev.endpoint(), s, e)
            })
            .collect();
        spans.sort_unstable();
        spans
            .windows(2)
            .any(|w| w[0].0 == w[1].0 && w[1].1 < w[0].2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flap(node: NodeId, port: PortId, down: u64, up: u64) -> FailureEvent {
        FailureEvent::LinkFlap {
            node,
            port,
            down_ns: down,
            up_ns: up,
        }
    }

    #[test]
    fn storm_interval_excludes_trailing_gap() {
        let ev = FailureEvent::PauseStorm {
            node: 4,
            port: 1,
            start_ns: 100,
            cycles: 3,
            pause_ns: 10,
            gap_ns: 5,
        };
        // Cycles pause at [100,110), [115,125), [130,140).
        assert_eq!(ev.interval(), (100, 140));
    }

    #[test]
    fn validate_rejects_overlap_even_across_link_sides() {
        let topo = Topology::dumbbell(1, 100.0, 1000);
        // Host 0 port 0 and switch 2 port 0 are the two ends of one link.
        let link = *topo.link_at(0, 0);
        let (peer, peer_port) = link.peer(0);
        let mut sched = FailureSchedule::none();
        sched.events.push(flap(0, 0, 100, 200));
        sched.events.push(flap(peer, peer_port, 150, 300));
        assert!(sched.validate(&topo).unwrap_err().contains("overlapping"));
        // Disjoint intervals on the same link are fine.
        sched.events[1] = flap(peer, peer_port, 200, 300);
        assert!(sched.validate(&topo).is_ok());
    }

    #[test]
    fn validate_rejects_missing_ports_and_empty_intervals() {
        let topo = Topology::dumbbell(1, 100.0, 1000);
        let mut sched = FailureSchedule::none();
        sched.events.push(flap(99, 0, 0, 10));
        assert!(sched.validate(&topo).unwrap_err().contains("missing port"));
        sched.events[0] = flap(0, 0, 10, 10);
        assert!(sched
            .validate(&topo)
            .unwrap_err()
            .contains("empty interval"));
    }

    #[test]
    fn endpoint_overlap_check_is_topology_free() {
        let mut sched = FailureSchedule::none();
        sched.events.push(flap(1, 0, 0, 100));
        sched.events.push(flap(1, 0, 50, 150));
        assert!(sched.has_endpoint_overlap());
        sched.events[1] = flap(1, 0, 100, 150);
        assert!(!sched.has_endpoint_overlap());
    }
}
