//! Topology partitioning for the parallel simulator: maps the topology's
//! locality zones (pods + core for a fat-tree, halves for a dumbbell) onto
//! `P` logical processes and derives the conservative lookahead from the
//! links that cross partition boundaries.
//!
//! The lookahead is the minimum propagation latency over *cut* links only:
//! an event dispatched at local time `t` can schedule work on a remote
//! partition no earlier than `t + lookahead`, because the only
//! cross-partition interactions — packet arrivals and PFC pause frames —
//! travel a physical link and are delayed by its `latency_ns`. A cut link
//! with zero latency would make the lookahead zero and conservative
//! synchronization degenerate to lockstep, so such topologies are rejected
//! at plan construction with [`PartitionError::ZeroLookahead`].

use std::fmt;

use crate::topology::{NodeId, Topology};

/// Why a topology cannot be partitioned as requested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A link crossing a partition boundary has `latency_ns == 0`, which
    /// would force a zero lookahead: conservative sync needs every
    /// cross-partition interaction to be delayed by at least one
    /// nanosecond. Carries the offending link's endpoints.
    ZeroLookahead {
        /// `(node, port)` of the zero-latency cut link's first endpoint.
        a: (NodeId, usize),
        /// `(node, port)` of its second endpoint.
        b: (NodeId, usize),
    },
    /// `num_partitions` was zero.
    NoPartitions,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::ZeroLookahead { a, b } => write!(
                f,
                "cannot partition: link between node {} port {} and node {} port {} \
                 crosses a partition boundary with latency 0 ns, so the conservative \
                 lookahead would be zero; give cut links nonzero latency or run \
                 single-partition",
                a.0, a.1, b.0, b.1
            ),
            PartitionError::NoPartitions => write!(f, "cannot partition into zero partitions"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A validated assignment of nodes to partitions plus the derived sync
/// parameters.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Number of logical processes (threads) the plan targets.
    pub num_partitions: usize,
    /// `node_partition[node]` = owning partition in `0..num_partitions`.
    pub node_partition: Vec<usize>,
    /// Conservative lookahead: minimum `latency_ns` over cut links, or
    /// `u64::MAX` when nothing is cut (single partition — no sync needed).
    pub lookahead_ns: u64,
    /// Number of links whose endpoints live in different partitions.
    pub cut_links: usize,
}

impl PartitionPlan {
    /// Derives a plan mapping the topology's zones round-robin onto
    /// `num_partitions` processes (zone `z` → partition `z %
    /// num_partitions`). With more partitions than zones the surplus
    /// partitions stay empty but the plan is still valid — they simply run
    /// out of events immediately each round.
    pub fn new(topo: &Topology, num_partitions: usize) -> Result<Self, PartitionError> {
        if num_partitions == 0 {
            return Err(PartitionError::NoPartitions);
        }
        let node_partition: Vec<usize> = (0..topo.num_nodes())
            .map(|n| topo.zone(n) % num_partitions)
            .collect();
        let mut lookahead_ns = u64::MAX;
        let mut cut_links = 0usize;
        for link in &topo.links {
            if node_partition[link.a.0] != node_partition[link.b.0] {
                cut_links += 1;
                if link.latency_ns == 0 {
                    return Err(PartitionError::ZeroLookahead {
                        a: link.a,
                        b: link.b,
                    });
                }
                lookahead_ns = lookahead_ns.min(link.latency_ns);
            }
        }
        Ok(Self {
            num_partitions,
            node_partition,
            lookahead_ns,
            cut_links,
        })
    }

    /// The partition owning `node`.
    pub fn owner(&self, node: NodeId) -> usize {
        self.node_partition[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_k4_four_partitions_cut_only_core_links() {
        let t = Topology::fat_tree(4, 100.0, 1000);
        let plan = PartitionPlan::new(&t, 4).unwrap();
        // Zones 0..3 (pods) map to partitions 0..3; the core zone (4) wraps
        // to partition 0 — so pods 1..3 reach the core over cut links, and
        // pod 0 shares the core's partition.
        assert_eq!(plan.owner(0), 0);
        assert_eq!(plan.owner(15), 3);
        assert_eq!(plan.owner(32), 0); // core
        assert_eq!(plan.lookahead_ns, 1000);
        // 16 agg↔core links total, minus pod 0's 4 intra-partition ones.
        assert_eq!(plan.cut_links, 12);
    }

    #[test]
    fn single_partition_has_no_cuts_and_infinite_lookahead() {
        let t = Topology::fat_tree(4, 100.0, 1000);
        let plan = PartitionPlan::new(&t, 1).unwrap();
        assert_eq!(plan.cut_links, 0);
        assert_eq!(plan.lookahead_ns, u64::MAX);
        assert!(plan.node_partition.iter().all(|&p| p == 0));
    }

    #[test]
    fn more_partitions_than_zones_is_valid() {
        let t = Topology::dumbbell(2, 100.0, 1000);
        let plan = PartitionPlan::new(&t, 4).unwrap();
        assert_eq!(plan.num_partitions, 4);
        // Only partitions 0 and 1 own nodes; the bottleneck is cut.
        assert_eq!(plan.cut_links, 1);
        assert_eq!(plan.lookahead_ns, 1000);
    }

    #[test]
    fn zero_latency_cut_link_is_rejected_with_a_clear_error() {
        // Dumbbell with 0 ns links: the bottleneck is cut at 2 partitions.
        let t = Topology::dumbbell(1, 100.0, 0);
        let err = PartitionPlan::new(&t, 2).unwrap_err();
        assert!(matches!(err, PartitionError::ZeroLookahead { .. }));
        let msg = err.to_string();
        assert!(msg.contains("latency 0 ns"), "message explains: {msg}");
        assert!(msg.contains("lookahead"), "message names lookahead: {msg}");
        // The same topology is fine single-partition (nothing is cut).
        assert!(PartitionPlan::new(&t, 1).is_ok());
    }

    #[test]
    fn zero_partitions_rejected() {
        let t = Topology::dumbbell(1, 100.0, 1000);
        assert_eq!(
            PartitionPlan::new(&t, 0).unwrap_err(),
            PartitionError::NoPartitions
        );
    }
}
