//! The discrete-event simulator: hosts with per-flow pacing (DCQCN) or
//! window clocking (DCTCP), output-queued switches with ECN marking, CNP/ACK
//! feedback and ground-truth telemetry taps.
//!
//! ## Model
//!
//! * Every node (host or switch) owns output ports ([`OutPort`]); a port
//!   serializes its head packet for `size·8/bandwidth` ns, then the packet
//!   propagates `latency_ns` and arrives at the peer node.
//! * Switches route by per-flow ECMP, mark ECN at enqueue (RED between
//!   `kmin`/`kmax`), tail-drop at the buffer limit, and expose every
//!   CE-marked data packet they forward as a [`MirrorCandidate`].
//! * DCQCN flows start at line rate and pace packets at their current rate;
//!   receivers return CNPs for CE-marked packets at most once per
//!   `cnp_interval_ns`. DCTCP flows are ACK-clocked with per-packet ECN echo.
//! * Losses are not retransmitted (the evaluation workloads are ECN-governed
//!   and virtually loss-free; conservation is asserted instead — see the
//!   integration tests).
//!
//! ## Determinism and the priority scheme
//!
//! Every scheduled event carries a priority `(counter << NODE_BITS) |
//! creator`, where `creator` is the node whose event is currently being
//! dispatched and `counter` is that node's private schedule count. The
//! global dispatch order is `(time, prio)` ascending. Because a node's
//! counter depends only on that node's own dispatch sequence — never on how
//! events from *other* nodes interleave — the order is identical whether
//! the simulation runs on one thread or partitioned across many (see
//! [`crate::parallel`]). Randomness follows the same discipline: each node
//! owns a private `ChaCha8` stream, so RED marking and fault-injection
//! draws depend only on that node's packet sequence.

use crate::dcqcn::{DcqcnParams, DcqcnState};
use crate::dctcp::{DctcpParams, DctcpState};
use crate::failure::{FailureEvent, FailureSchedule};
use crate::packet::{FlowId, Packet, PacketKind};
use crate::partition::PartitionPlan;
use crate::queue::{EcnConfig, EnqueueOutcome, OutPort};
use crate::sched::{EventQueue, SchedulerKind};
use crate::telemetry::{
    ClockModel, EpisodeTracker, MirrorCandidate, QueueEpisode, QueueLengthDist, TapTags, Telemetry,
    TxRecord,
};
use crate::topology::{NodeId, PortId, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::{Arc, Mutex};

/// Bits of an event priority reserved for the creator node id; the upper
/// bits hold that node's schedule counter (counter-major comparison, node id
/// as the final tie-break). 20 bits ≈ 1M nodes, leaving 44-bit counters.
pub(crate) const NODE_BITS: u32 = 20;

/// A cross-partition event in flight: `(time, prio, event)`.
pub(crate) type OutboundEvent = (u64, u64, Event);

/// Which congestion-control algorithm drives a flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CongestionControl {
    /// Rate-based RDMA-style control (RoCEv2 + DCQCN). The default in the
    /// paper's simulations.
    Dcqcn,
    /// Window-based DCTCP-style control (for the TCP use cases).
    Dctcp,
    /// No congestion control: fixed-rate pacing at the given Gbps (used for
    /// on-off background traffic in the testbed-style experiments).
    FixedRate(f64),
}

/// One flow to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Unique flow id.
    pub id: FlowId,
    /// Source host node.
    pub src: NodeId,
    /// Destination host node.
    pub dst: NodeId,
    /// Application bytes to transfer.
    pub size_bytes: u64,
    /// Start time in ns.
    pub start_ns: u64,
    /// Congestion control.
    pub cc: CongestionControl,
}

/// PFC (priority flow control) configuration for lossless-fabric mode.
///
/// When a switch egress queue exceeds `xoff_bytes`, the switch pauses every
/// neighbor that can feed it; once the queue drains below `xon_bytes`, it
/// resumes them. Pause/resume frames propagate with the link latency, so
/// some headroom above `xoff_bytes` must remain in the buffer (one
/// bandwidth-delay product per upstream port).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfcConfig {
    /// Queue length that triggers XOFF, bytes.
    pub xoff_bytes: u32,
    /// Queue length that triggers XON, bytes.
    pub xon_bytes: u32,
}

impl Default for PfcConfig {
    fn default() -> Self {
        Self {
            xoff_bytes: 512 * 1024,
            xon_bytes: 384 * 1024,
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// ECN marking thresholds applied at every switch port.
    pub ecn: EcnConfig,
    /// Lossless-fabric mode: PFC pause thresholds (`None` = lossy fabric).
    pub pfc: Option<PfcConfig>,
    /// Report dropped data packets in the telemetry (deflect-on-drop, §5).
    pub deflect_on_drop: bool,
    /// Programmable-switch mode (§5): record every data packet enqueued
    /// while the queue is at or above this threshold, with the instantaneous
    /// queue length (ConQuest/BurstRadar-style capture). `None` disables.
    pub burst_capture_threshold: Option<u32>,
    /// Fault injection: probability that a packet arriving at a switch is
    /// lost to a link/ASIC error (independent per packet). Exercises the
    /// monitoring stack's robustness to losses outside congestion.
    pub random_loss_probability: f64,
    /// Switch buffer per port, bytes.
    pub switch_buffer_bytes: u32,
    /// Host NIC buffer, bytes.
    pub host_buffer_bytes: u32,
    /// Host pacing back-pressure watermark: pacing defers while the NIC
    /// queue holds more than this many bytes.
    pub host_watermark_bytes: u32,
    /// MTU (maximum data packet size), bytes.
    pub mtu_bytes: u32,
    /// Hard simulation stop, ns (events beyond are not processed).
    pub end_ns: u64,
    /// DCQCN parameters.
    pub dcqcn: DcqcnParams,
    /// DCTCP parameters.
    pub dctcp: DctcpParams,
    /// RNG seed (ECN marking randomness).
    pub seed: u64,
    /// Per-node residual clock error bound, ns (0 = perfect clocks).
    pub clock_error_ns: i64,
    /// Collect the time-weighted queue-length distribution.
    pub collect_queue_dist: bool,
    /// Event scheduler implementation. Never affects results, only speed
    /// (both schedulers pop in identical `(time, prio)` order).
    pub scheduler: SchedulerKind,
    /// Scheduled fabric failures (link flaps, forced PFC pause storms).
    /// Empty by default; see [`crate::failure`] for the model.
    pub failures: FailureSchedule,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            ecn: EcnConfig::default(),
            pfc: None,
            deflect_on_drop: false,
            burst_capture_threshold: None,
            random_loss_probability: 0.0,
            switch_buffer_bytes: 1600 * 1024,
            host_buffer_bytes: 4 * 1024 * 1024,
            host_watermark_bytes: 2 * 1024 * 1024,
            mtu_bytes: 1000,
            end_ns: 25_000_000, // 25 ms
            dcqcn: DcqcnParams::default(),
            dctcp: DctcpParams::default(),
            seed: 1,
            clock_error_ns: 100,
            collect_queue_dist: true,
            scheduler: SchedulerKind::default(),
            failures: FailureSchedule::none(),
        }
    }
}

/// Per-flow completion statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowStats {
    /// The spec this flow ran with.
    pub spec: FlowSpec,
    /// Bytes handed to the NIC.
    pub sent_bytes: u64,
    /// Bytes delivered to the destination.
    pub delivered_bytes: u64,
    /// Data packets sent.
    pub packets_sent: u64,
    /// Completion time (all bytes delivered), ns, if the flow finished.
    pub fct_ns: Option<u64>,
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// All telemetry taps.
    pub telemetry: Telemetry,
    /// Per-flow statistics, in spec order.
    pub flows: Vec<FlowStats>,
    /// The clock model used (for analyzer-side alignment experiments).
    pub clocks: ClockModel,
    /// True time of the last processed event, ns.
    pub end_ns: u64,
    /// Total events dispatched (the denominator of events/sec benchmarks).
    pub events_processed: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Event {
    FlowStart {
        flow: usize,
    },
    /// Paced send attempt (DCQCN / fixed-rate) or blocked-send retry (DCTCP).
    FlowSend {
        flow: usize,
    },
    /// The head packet of (node, port) finished serializing.
    Departure {
        node: NodeId,
        port: PortId,
    },
    /// A packet arrives at a node after propagation.
    Arrival {
        node: NodeId,
        packet: PacketBox,
    },
    AlphaTimer {
        flow: usize,
        generation: u64,
    },
    RateTimer {
        flow: usize,
        generation: u64,
    },
    /// A PFC pause/resume frame lands at (node, port) after link latency.
    Pause {
        node: NodeId,
        port: PortId,
        on: bool,
        triggered_by: NodeId,
    },
    /// The duplex link at (node, port) changes state (failure injection).
    LinkState {
        node: NodeId,
        port: PortId,
        up: bool,
    },
}

/// `Packet` wrapped for the event queue (needs `Eq` for the heap tuple).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PacketBox(Packet);
impl Eq for PacketBox {}

/// Partition-mode context: which logical process this simulator instance
/// is, buffered outbound cross-partition events, and the `(time, prio)`
/// tags the merge step uses to interleave telemetry records into the exact
/// sequential order (see [`crate::parallel`]).
pub(crate) struct PartCtx {
    /// This instance's partition id.
    pub(crate) id: usize,
    /// The shared partition plan (node → partition, lookahead).
    pub(crate) plan: Arc<PartitionPlan>,
    /// Cross-partition events created this window, keyed by destination.
    pub(crate) outbound: Vec<Vec<OutboundEvent>>,
    /// Per-tap dispatch tags, one per telemetry record pushed during the
    /// run phase.
    pub(crate) tags: TapTags,
}

struct FlowRt {
    spec: FlowSpec,
    remaining: u64,
    next_psn: u64,
    sent_bytes: u64,
    delivered: u64,
    packets_sent: u64,
    fct_ns: Option<u64>,
    dcqcn: Option<DcqcnState>,
    dctcp: Option<DctcpState>,
    /// Receiver-side: last CNP emission time.
    last_cnp_ns: Option<u64>,
    /// Receiver-side cumulative delivery frontier (for ACKs).
    rcv_cum: u64,
    /// True while a FlowSend event is in flight (avoids duplicate pacing
    /// chains).
    send_scheduled: bool,
}

/// The simulator. Construct with a topology, flows and a config, then call
/// [`Simulator::run`].
///
/// ```
/// use umon_netsim::{CongestionControl, FlowId, FlowSpec, SimConfig, Simulator, Topology};
///
/// // One 100 kB DCQCN flow across a dumbbell.
/// let topo = Topology::dumbbell(1, 100.0, 1000);
/// let flows = vec![FlowSpec {
///     id: FlowId(0),
///     src: 0,
///     dst: 1,
///     size_bytes: 100_000,
///     start_ns: 0,
///     cc: CongestionControl::Dcqcn,
/// }];
/// let result = Simulator::new(topo, flows, SimConfig::default()).run();
/// assert_eq!(result.flows[0].delivered_bytes, 100_000);
/// assert_eq!(result.telemetry.tx_records.len(), 100); // 100 × 1000 B packets
/// ```
pub struct Simulator {
    topo: Arc<Topology>,
    config: SimConfig,
    clocks: ClockModel,
    /// One private RNG stream per node (RED marking, random-loss draws):
    /// a node's draw sequence depends only on its own dispatch sequence.
    node_rng: Vec<ChaCha8Rng>,
    now: u64,
    /// Per-node schedule counters — the high bits of event priorities.
    sched_count: Vec<u64>,
    /// Owner node of the event currently being dispatched (the creator of
    /// everything scheduled from inside this dispatch).
    cur_node: NodeId,
    /// Priority of the event currently being dispatched (tags telemetry
    /// pushes in partition mode).
    cur_prio: u64,
    events_processed: u64,
    events: EventQueue<Event>,
    /// `ports[node][port]`.
    ports: Vec<Vec<OutPort>>,
    flows: Vec<FlowRt>,
    episode_trackers: Vec<Vec<EpisodeTracker>>,
    queue_dists: Vec<Vec<QueueLengthDist>>,
    /// Per switch-port: true while this queue holds XOFF on its feeders.
    pfc_asserting: Vec<Vec<bool>>,
    /// Per (node, port): true while the attached link is failed.
    link_down: Vec<Vec<bool>>,
    telemetry: Telemetry,
    /// `Some` when this instance is one logical process of a parallel run.
    part: Option<Box<PartCtx>>,
}

impl Simulator {
    /// Builds a simulator over `topo` running `flows`.
    pub fn new(topo: Topology, flows: Vec<FlowSpec>, config: SimConfig) -> Self {
        Self::build(Arc::new(topo), flows, config, None)
    }

    /// Builds one logical process of a parallel run: partition `id` of
    /// `plan`. It seeds and dispatches only events owned by its nodes and
    /// buffers cross-partition events into `PartCtx::outbound`.
    pub(crate) fn new_partition(
        topo: Arc<Topology>,
        flows: Vec<FlowSpec>,
        config: SimConfig,
        plan: Arc<PartitionPlan>,
        id: usize,
    ) -> Self {
        let outbound = vec![Vec::new(); plan.num_partitions];
        let part = PartCtx {
            id,
            plan,
            outbound,
            tags: TapTags::default(),
        };
        Self::build(topo, flows, config, Some(Box::new(part)))
    }

    fn build(
        topo: Arc<Topology>,
        flows: Vec<FlowSpec>,
        config: SimConfig,
        part: Option<Box<PartCtx>>,
    ) -> Self {
        let clocks = if config.clock_error_ns == 0 {
            ClockModel::perfect(topo.num_nodes())
        } else {
            ClockModel::ptp(topo.num_nodes(), config.clock_error_ns, config.seed)
        };
        let owned = |node: NodeId| match &part {
            Some(p) => p.plan.owner(node) == p.id,
            None => true,
        };
        let mut ports = Vec::with_capacity(topo.num_nodes());
        let mut trackers = Vec::with_capacity(topo.num_nodes());
        let mut dists = Vec::with_capacity(topo.num_nodes());
        for node in 0..topo.num_nodes() {
            let n = topo.ports(node);
            if topo.is_host(node) {
                ports.push(vec![OutPort::new(config.host_buffer_bytes, None); n]);
                trackers.push(Vec::new());
                dists.push(Vec::new());
            } else {
                ports.push(vec![
                    OutPort::new(
                        config.switch_buffer_bytes,
                        Some(config.ecn)
                    );
                    n
                ]);
                trackers.push(vec![EpisodeTracker::new(config.ecn.kmin); n]);
                // Queue distributions are the large per-port allocation;
                // a partition only ever observes its own switches.
                dists.push(if config.collect_queue_dist && owned(node) {
                    vec![QueueLengthDist::new(1024); n]
                } else {
                    Vec::new()
                });
            }
        }
        let node_rng = (0..topo.num_nodes())
            .map(|node| {
                ChaCha8Rng::seed_from_u64(splitmix64(
                    config
                        .seed
                        .wrapping_add((node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                ))
            })
            .collect();
        let flow_rts = flows
            .into_iter()
            .map(|spec| FlowRt {
                spec,
                remaining: spec.size_bytes,
                next_psn: 0,
                sent_bytes: 0,
                delivered: 0,
                packets_sent: 0,
                fct_ns: None,
                dcqcn: match spec.cc {
                    CongestionControl::Dcqcn => Some(DcqcnState::new(&config.dcqcn)),
                    _ => None,
                },
                dctcp: match spec.cc {
                    CongestionControl::Dctcp => Some(DctcpState::new(&config.dctcp)),
                    _ => None,
                },
                last_cnp_ns: None,
                rcv_cum: 0,
                send_scheduled: false,
            })
            .collect();
        if let Err(msg) = config.failures.validate(&topo) {
            panic!("invalid failure schedule: {msg}");
        }
        let events = EventQueue::new(config.scheduler);
        Self {
            config,
            clocks,
            node_rng,
            now: 0,
            sched_count: vec![0; topo.num_nodes()],
            cur_node: 0,
            cur_prio: 0,
            events_processed: 0,
            events,
            pfc_asserting: ports.iter().map(|ps| vec![false; ps.len()]).collect(),
            link_down: ports.iter().map(|ps| vec![false; ps.len()]).collect(),
            ports,
            flows: flow_rts,
            episode_trackers: trackers,
            queue_dists: dists,
            telemetry: Telemetry::default(),
            part,
            topo,
        }
    }

    /// The node whose state machine an event belongs to: flow-clocking
    /// events belong to the flow's source host, everything else names its
    /// node explicitly. The owner both dispatches the event and acts as
    /// creator for everything scheduled from inside that dispatch.
    fn event_owner(&self, ev: &Event) -> NodeId {
        match *ev {
            Event::FlowStart { flow }
            | Event::FlowSend { flow }
            | Event::AlphaTimer { flow, .. }
            | Event::RateTimer { flow, .. } => self.flows[flow].spec.src,
            Event::Departure { node, .. }
            | Event::Arrival { node, .. }
            | Event::Pause { node, .. }
            | Event::LinkState { node, .. } => node,
        }
    }

    /// Allocates the next priority for an event created by `creator`.
    fn next_prio(&mut self, creator: NodeId) -> u64 {
        debug_assert!((creator as u64) < (1u64 << NODE_BITS), "node id overflow");
        let c = &mut self.sched_count[creator];
        *c += 1;
        (*c << NODE_BITS) | creator as u64
    }

    /// Schedules `event` from inside a dispatch: the creator is the node
    /// whose event is currently executing. In partition mode, events owned
    /// by a remote partition are buffered outbound instead of queued — the
    /// conservative lookahead guarantees they cannot be due before the
    /// current synchronization window closes.
    fn schedule(&mut self, time: u64, event: Event) {
        let prio = self.next_prio(self.cur_node);
        if let Some(part) = self.part.as_mut() {
            let owner = match event {
                Event::FlowStart { flow }
                | Event::FlowSend { flow }
                | Event::AlphaTimer { flow, .. }
                | Event::RateTimer { flow, .. } => self.flows[flow].spec.src,
                Event::Departure { node, .. }
                | Event::Arrival { node, .. }
                | Event::Pause { node, .. }
                | Event::LinkState { node, .. } => node,
            };
            let dest = part.plan.owner(owner);
            if dest != part.id {
                debug_assert!(
                    matches!(event, Event::Arrival { .. } | Event::Pause { .. }),
                    "only link-delayed events may cross partitions"
                );
                debug_assert!(
                    time >= self.now + part.plan.lookahead_ns,
                    "cross-partition event inside the lookahead window"
                );
                part.outbound[dest].push((time, prio, event));
                return;
            }
        }
        self.events.push(time, prio, event);
    }

    /// Schedules an event during initialization (failure expansion, flow
    /// starts), before any dispatch: the creator is the event's own owner.
    /// Counters advance identically in every partition — each one iterates
    /// the full init list — but only the owner keeps the event.
    fn schedule_init(&mut self, time: u64, event: Event) {
        let owner = self.event_owner(&event);
        let prio = self.next_prio(owner);
        if let Some(part) = self.part.as_ref() {
            if part.plan.owner(owner) != part.id {
                return;
            }
        }
        self.events.push(time, prio, event);
    }

    /// True if this instance owns `node` (always, outside partition mode).
    fn owns(&self, node: NodeId) -> bool {
        match &self.part {
            Some(p) => p.plan.owner(node) == p.id,
            None => true,
        }
    }

    /// Seeds the initial event population: expanded failure schedule plus
    /// one `FlowStart` per flow.
    pub(crate) fn seed_initial_events(&mut self) {
        self.schedule_failures();
        for f in 0..self.flows.len() {
            let start = self.flows[f].spec.start_ns;
            self.schedule_init(start, Event::FlowStart { flow: f });
        }
    }

    /// Runs to completion (event queue empty or `end_ns` reached) and
    /// returns the telemetry and flow statistics.
    pub fn run(mut self) -> SimResult {
        self.seed_initial_events();
        while let Some((time, prio, event)) = self.events.pop() {
            if time > self.config.end_ns {
                self.now = self.config.end_ns;
                break;
            }
            self.now = time;
            self.events_processed += 1;
            self.cur_prio = prio;
            self.cur_node = self.event_owner(&event);
            self.dispatch(event);
        }
        self.finish()
    }

    /// Partition-mode event loop for one synchronization window: dispatches
    /// every local event strictly before `upper` (and never past `end_ns` —
    /// those stay queued, matching the sequential early-exit).
    pub(crate) fn process_window(&mut self, upper: u64) {
        let upper = upper.min(self.config.end_ns.saturating_add(1));
        while let Some(t) = self.events.next_time() {
            if t >= upper {
                break;
            }
            let (time, prio, event) = self.events.pop().expect("peeked nonempty");
            self.now = time;
            self.events_processed += 1;
            self.cur_prio = prio;
            self.cur_node = self.event_owner(&event);
            self.dispatch(event);
        }
    }

    /// Timestamp of this partition's earliest pending event.
    pub(crate) fn next_event_time(&self) -> Option<u64> {
        self.events.next_time()
    }

    /// True time of the last dispatched event.
    pub(crate) fn last_dispatch_time(&self) -> u64 {
        self.now
    }

    /// Moves this window's outbound cross-partition events into the shared
    /// mailboxes (one per destination partition).
    pub(crate) fn flush_outbound(&mut self, mailboxes: &[Mutex<Vec<OutboundEvent>>]) {
        let part = self.part.as_mut().expect("partition mode");
        for (dest, batch) in part.outbound.iter_mut().enumerate() {
            if !batch.is_empty() {
                mailboxes[dest].lock().expect("mailbox").append(batch);
            }
        }
    }

    /// Accepts a batch of cross-partition events delivered at a barrier.
    /// Priorities were assigned by the creators; `(time, prio)` slots them
    /// into exactly the sequential order.
    pub(crate) fn deliver(&mut self, batch: &mut Vec<OutboundEvent>) {
        for (time, prio, event) in batch.drain(..) {
            self.events.push(time, prio, event);
        }
    }

    /// Partition-mode finish: close episodes/distributions at the *global*
    /// end time and hand back the per-tap dispatch tags for the merge.
    pub(crate) fn finish_partition(mut self, global_end: u64) -> (SimResult, TapTags) {
        let tags = std::mem::take(&mut self.part.as_mut().expect("partition mode").tags);
        self.now = global_end;
        (self.finish(), tags)
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::FlowStart { flow } => self.on_flow_start(flow),
            Event::FlowSend { flow } => self.on_flow_send(flow),
            Event::Departure { node, port } => self.on_departure(node, port),
            Event::Arrival { node, packet } => self.on_arrival(node, packet.0),
            Event::AlphaTimer { flow, generation } => self.on_alpha_timer(flow, generation),
            Event::RateTimer { flow, generation } => self.on_rate_timer(flow, generation),
            Event::Pause {
                node,
                port,
                on,
                triggered_by,
            } => self.on_pause(node, port, on, triggered_by),
            Event::LinkState { node, port, up } => self.on_link_state(node, port, up),
        }
    }

    /// Expands the failure schedule into concrete events. Pause storms drive
    /// the ordinary PFC machinery; the paused node itself is recorded as
    /// `triggered_by`, which organic PFC can never produce (a congested
    /// switch pauses its *neighbors*), so injected records stay
    /// distinguishable in the telemetry.
    fn schedule_failures(&mut self) {
        let events = self.config.failures.events.clone();
        for ev in events {
            match ev {
                FailureEvent::LinkFlap {
                    node,
                    port,
                    down_ns,
                    up_ns,
                } => {
                    // A flap changes both endpoints of the duplex link, which
                    // may live in different partitions: expand it into one
                    // LinkState per endpoint, named endpoint first so the
                    // record order matches the pre-split trace.
                    let (peer, peer_port) = self.topo.link_at(node, port).peer(node);
                    for up in [false, true] {
                        let t = if up { up_ns } else { down_ns };
                        self.schedule_init(t, Event::LinkState { node, port, up });
                        self.schedule_init(
                            t,
                            Event::LinkState {
                                node: peer,
                                port: peer_port,
                                up,
                            },
                        );
                    }
                }
                FailureEvent::PauseStorm {
                    node,
                    port,
                    start_ns,
                    cycles,
                    pause_ns,
                    gap_ns,
                } => {
                    for c in 0..cycles as u64 {
                        let t = start_ns + c * (pause_ns + gap_ns);
                        self.schedule_init(
                            t,
                            Event::Pause {
                                node,
                                port,
                                on: true,
                                triggered_by: node,
                            },
                        );
                        self.schedule_init(
                            t + pause_ns,
                            Event::Pause {
                                node,
                                port,
                                on: false,
                                triggered_by: node,
                            },
                        );
                    }
                }
            }
        }
    }

    /// One endpoint of a link flap takes effect (the schedule expands a flap
    /// into one event per endpoint — they may live in different partitions).
    /// On recovery, an endpoint with queued work and an idle, unpaused
    /// serializer restarts it.
    fn on_link_state(&mut self, node: NodeId, port: PortId, up: bool) {
        self.link_down[node][port] = !up;
        if let Some(p) = self.part.as_mut() {
            p.tags.link.push((self.now, self.cur_prio));
        }
        self.telemetry
            .link_records
            .push(crate::telemetry::LinkRecord {
                node,
                port,
                ts_ns: self.now,
                up,
            });
        let prt = &mut self.ports[node][port];
        if up && !prt.busy && !prt.is_paused() && prt.head().is_some() {
            prt.busy = true;
            let head_size = prt.head().expect("checked").size;
            let tx = self.topo.link_at(node, port).tx_time_ns(head_size);
            self.schedule(self.now + tx, Event::Departure { node, port });
        }
    }

    /// A PFC pause/resume frame takes effect at (node, port).
    fn on_pause(&mut self, node: NodeId, port: PortId, on: bool, triggered_by: NodeId) {
        if let Some(p) = self.part.as_mut() {
            p.tags.pause.push((self.now, self.cur_prio));
        }
        self.telemetry
            .pause_records
            .push(crate::telemetry::PauseRecord {
                node,
                port,
                triggered_by,
                ts_ns: self.now,
                on,
            });
        let p = &mut self.ports[node][port];
        if on {
            p.pause_count += 1;
        } else {
            p.pause_count = p.pause_count.saturating_sub(1);
            let down = self.link_down[node][port];
            // Resumed and idle with work queued: restart the serializer
            // (unless the link itself is failed).
            if !down && !p.is_paused() && !p.busy && p.head().is_some() {
                p.busy = true;
                let head_size = p.head().expect("checked").size;
                let tx = self.topo.link_at(node, port).tx_time_ns(head_size);
                self.schedule(self.now + tx, Event::Departure { node, port });
            }
        }
    }

    fn on_flow_start(&mut self, flow: usize) {
        match self.flows[flow].spec.cc {
            CongestionControl::Dcqcn | CongestionControl::FixedRate(_) => {
                let gen = self.flows[flow].dcqcn.as_ref().map(|d| d.generation);
                self.flows[flow].send_scheduled = true;
                self.schedule(self.now, Event::FlowSend { flow });
                if let Some(gen) = gen {
                    let p = self.config.dcqcn;
                    self.schedule(
                        self.now + p.alpha_timer_ns,
                        Event::AlphaTimer {
                            flow,
                            generation: gen,
                        },
                    );
                    self.schedule(
                        self.now + p.rate_timer_ns,
                        Event::RateTimer {
                            flow,
                            generation: gen,
                        },
                    );
                }
            }
            CongestionControl::Dctcp => self.dctcp_try_send(flow),
        }
    }

    /// Paced send path (DCQCN / fixed rate).
    fn on_flow_send(&mut self, flow: usize) {
        self.flows[flow].send_scheduled = false;
        if self.flows[flow].remaining == 0 {
            return;
        }
        let host = self.flows[flow].spec.src;
        // NIC back-pressure: defer pacing while the host queue is deep.
        if self.ports[host][0].qlen_bytes() > self.config.host_watermark_bytes {
            let retry = self.topo.link_at(host, 0).tx_time_ns(self.config.mtu_bytes);
            self.flows[flow].send_scheduled = true;
            self.schedule(self.now + retry, Event::FlowSend { flow });
            return;
        }
        let size = (self.config.mtu_bytes as u64).min(self.flows[flow].remaining) as u32;
        let psn = self.flows[flow].next_psn;
        let spec = self.flows[flow].spec;
        let pkt = Packet::data(spec.id, spec.src, spec.dst, size, psn, self.now);
        self.flows[flow].next_psn += 1;
        self.flows[flow].remaining -= size as u64;
        self.flows[flow].sent_bytes += size as u64;
        self.flows[flow].packets_sent += 1;
        self.host_transmit(host, pkt);

        // DCQCN byte counter.
        let mut byte_trip = false;
        if let Some(d) = self.flows[flow].dcqcn.as_mut() {
            byte_trip = d.on_bytes_sent(size as u64, &self.config.dcqcn);
        }
        if byte_trip {
            if let Some(d) = self.flows[flow].dcqcn.as_mut() {
                d.on_rate_increase(false, &self.config.dcqcn);
            }
        }

        if self.flows[flow].remaining > 0 {
            let delay = match (self.flows[flow].spec.cc, self.flows[flow].dcqcn.as_ref()) {
                (CongestionControl::FixedRate(gbps), _) => {
                    ((size as f64 * 8.0 / gbps).ceil() as u64).max(1)
                }
                (_, Some(d)) => d.pacing_delay_ns(size),
                _ => unreachable!("paced send without rate state"),
            };
            self.flows[flow].send_scheduled = true;
            self.schedule(self.now + delay, Event::FlowSend { flow });
        }
    }

    /// Window-clocked send path (DCTCP).
    fn dctcp_try_send(&mut self, flow: usize) {
        loop {
            if self.flows[flow].remaining == 0 {
                return;
            }
            let host = self.flows[flow].spec.src;
            if self.ports[host][0].qlen_bytes() > self.config.host_watermark_bytes {
                if !self.flows[flow].send_scheduled {
                    let retry = self.topo.link_at(host, 0).tx_time_ns(self.config.mtu_bytes);
                    self.flows[flow].send_scheduled = true;
                    self.schedule(self.now + retry, Event::FlowSend { flow });
                }
                return;
            }
            let Some(st) = self.flows[flow].dctcp.as_mut() else {
                return;
            };
            if st.in_flight_budget() == 0 {
                return;
            }
            let seq = st.next_seq;
            st.on_send(seq);
            let size = (self.config.mtu_bytes as u64).min(self.flows[flow].remaining) as u32;
            let spec = self.flows[flow].spec;
            let pkt = Packet::data(spec.id, spec.src, spec.dst, size, seq, self.now);
            self.flows[flow].next_psn = seq + 1;
            self.flows[flow].remaining -= size as u64;
            self.flows[flow].sent_bytes += size as u64;
            self.flows[flow].packets_sent += 1;
            self.host_transmit(host, pkt);
        }
    }

    /// Puts a packet on the host NIC queue and records the ground-truth
    /// egress tap (data packets only).
    fn host_transmit(&mut self, host: NodeId, pkt: Packet) {
        if pkt.is_data() {
            self.telemetry.injected_bytes += pkt.size as u64;
            if let Some(p) = self.part.as_mut() {
                p.tags.tx.push((self.now, self.cur_prio));
            }
            self.telemetry.tx_records.push(TxRecord {
                host,
                flow: pkt.flow,
                ts_ns: self.clocks.local_time(host, self.now),
                bytes: pkt.size,
            });
        }
        self.enqueue_port(host, 0, pkt);
    }

    /// Enqueues at (node, port) and kicks the serializer if idle.
    fn enqueue_port(&mut self, node: NodeId, port: PortId, pkt: Packet) {
        let (flow, psn, bytes, is_data) = (pkt.flow, pkt.psn, pkt.size, pkt.is_data());
        let outcome = self.ports[node][port].enqueue(pkt, &mut self.node_rng[node]);
        if outcome == EnqueueOutcome::Dropped {
            self.telemetry.drops += 1;
        }
        // μEvent tap: a data packet CE-marked here is a candidate for this
        // switch's ACL mirror rule (§5). The mark is applied (and observed)
        // at the congested egress queue, so the candidate carries this
        // switch's local timestamp and egress port.
        if outcome == EnqueueOutcome::QueuedMarked && is_data && !self.topo.is_host(node) {
            if let Some(p) = self.part.as_mut() {
                p.tags.mirror.push((self.now, self.cur_prio));
            }
            self.telemetry.mirror_candidates.push(MirrorCandidate {
                switch: node,
                port,
                ts_ns: self.clocks.local_time(node, self.now),
                flow,
                psn,
                bytes,
            });
        }
        // Programmable-switch tap: direct queue observation at enqueue.
        if let Some(threshold) = self.config.burst_capture_threshold {
            if outcome != EnqueueOutcome::Dropped && is_data && !self.topo.is_host(node) {
                let qlen = self.ports[node][port].qlen_bytes();
                if qlen >= threshold {
                    if let Some(p) = self.part.as_mut() {
                        p.tags.burst.push((self.now, self.cur_prio));
                    }
                    self.telemetry
                        .burst_records
                        .push(crate::telemetry::BurstRecord {
                            switch: node,
                            port,
                            ts_ns: self.clocks.local_time(node, self.now),
                            flow,
                            qlen_bytes: qlen,
                        });
                }
            }
        }
        if outcome == EnqueueOutcome::Dropped
            && is_data
            && self.config.deflect_on_drop
            && !self.topo.is_host(node)
        {
            if let Some(p) = self.part.as_mut() {
                p.tags.drop.push((self.now, self.cur_prio));
            }
            self.telemetry
                .drop_records
                .push(crate::telemetry::DropRecord {
                    switch: node,
                    port,
                    ts_ns: self.clocks.local_time(node, self.now),
                    flow,
                    psn,
                    bytes,
                });
        }
        self.observe_queue(node, port);
        if outcome != EnqueueOutcome::Dropped
            && !self.ports[node][port].busy
            && !self.ports[node][port].is_paused()
            && !self.link_down[node][port]
        {
            self.ports[node][port].busy = true;
            let head_size = self.ports[node][port].head().expect("just queued").size;
            let tx = self.topo.link_at(node, port).tx_time_ns(head_size);
            self.schedule(self.now + tx, Event::Departure { node, port });
        }
    }

    fn on_departure(&mut self, node: NodeId, port: PortId) {
        let pkt = self.ports[node][port]
            .dequeue()
            .expect("departure from empty port");
        self.observe_queue(node, port);

        // The link failed while this packet was serializing: it is lost on
        // the wire, and the serializer stays idle until link-up restarts it.
        if self.link_down[node][port] {
            self.telemetry.link_losses += 1;
            if pkt.is_data() && self.config.deflect_on_drop && !self.topo.is_host(node) {
                if let Some(p) = self.part.as_mut() {
                    p.tags.drop.push((self.now, self.cur_prio));
                }
                self.telemetry
                    .drop_records
                    .push(crate::telemetry::DropRecord {
                        switch: node,
                        port,
                        ts_ns: self.clocks.local_time(node, self.now),
                        flow: pkt.flow,
                        psn: pkt.psn,
                        bytes: pkt.size,
                    });
            }
            self.ports[node][port].busy = false;
            return;
        }

        let link = *self.topo.link_at(node, port);
        let (peer, _) = link.peer(node);
        self.schedule(
            self.now + link.latency_ns,
            Event::Arrival {
                node: peer,
                packet: PacketBox(pkt),
            },
        );

        // PFC gates the serializer: the transmission that was in flight
        // completes, but no new one starts while paused.
        if self.ports[node][port].is_paused() {
            self.ports[node][port].busy = false;
        } else if let Some(head) = self.ports[node][port].head() {
            let tx = link.tx_time_ns(head.size);
            self.schedule(self.now + tx, Event::Departure { node, port });
        } else {
            self.ports[node][port].busy = false;
        }
    }

    fn on_arrival(&mut self, node: NodeId, pkt: Packet) {
        // Fault injection: random link/ASIC loss at switch ingress.
        if self.config.random_loss_probability > 0.0
            && !self.topo.is_host(node)
            && rand::Rng::gen_bool(
                &mut self.node_rng[node],
                self.config.random_loss_probability,
            )
        {
            self.telemetry.drops += 1;
            self.telemetry.random_losses += 1;
            return;
        }
        if self.topo.is_host(node) {
            self.host_receive(node, pkt);
        } else {
            let port = self
                .topo
                .route(node, pkt.dst, flow_route_hash(pkt.flow, pkt.kind));
            self.enqueue_port(node, port, pkt);
        }
    }

    fn host_receive(&mut self, host: NodeId, pkt: Packet) {
        let flow = self.flow_index(pkt.flow).expect("packet for unknown flow");
        match pkt.kind {
            PacketKind::Data => {
                debug_assert_eq!(pkt.dst, host);
                self.telemetry.delivered_bytes += pkt.size as u64;
                self.flows[flow].delivered += pkt.size as u64;
                if self.flows[flow].fct_ns.is_none()
                    && self.flows[flow].delivered >= self.flows[flow].spec.size_bytes
                {
                    self.flows[flow].fct_ns = Some(self.now);
                }
                match self.flows[flow].spec.cc {
                    CongestionControl::Dcqcn => {
                        if pkt.is_ce() {
                            self.maybe_send_cnp(flow, host, pkt);
                        }
                    }
                    CongestionControl::Dctcp => {
                        // Cumulative frontier tolerant to loss: any arrival
                        // advances the ACK to at least psn+1 (no retransmit
                        // in this model — see module docs).
                        let cum = self.flows[flow].rcv_cum.max(pkt.psn + 1);
                        self.flows[flow].rcv_cum = cum;
                        let spec = self.flows[flow].spec;
                        let ack = Packet::ack(
                            spec.id,
                            spec.dst,
                            spec.src,
                            pkt.psn,
                            cum,
                            pkt.is_ce(),
                            self.now,
                        );
                        self.enqueue_port(host, 0, ack);
                    }
                    CongestionControl::FixedRate(_) => {}
                }
            }
            PacketKind::Cnp => {
                // Reaction point: multiplicative decrease + timer restart.
                let p = self.config.dcqcn;
                if let Some(d) = self.flows[flow].dcqcn.as_mut() {
                    d.on_cnp(&p);
                    let gen = d.generation;
                    self.schedule(
                        self.now + p.alpha_timer_ns,
                        Event::AlphaTimer {
                            flow,
                            generation: gen,
                        },
                    );
                    self.schedule(
                        self.now + p.rate_timer_ns,
                        Event::RateTimer {
                            flow,
                            generation: gen,
                        },
                    );
                }
            }
            PacketKind::Ack { ack_seq, ece } => {
                let p = self.config.dctcp;
                if let Some(st) = self.flows[flow].dctcp.as_mut() {
                    st.on_ack(ack_seq, ece, &p);
                }
                self.dctcp_try_send(flow);
            }
        }
    }

    /// NP-side CNP pacing: at most one CNP per flow per `cnp_interval_ns`.
    fn maybe_send_cnp(&mut self, flow: usize, host: NodeId, pkt: Packet) {
        let interval = self.config.dcqcn.cnp_interval_ns;
        let due = match self.flows[flow].last_cnp_ns {
            None => true,
            Some(last) => self.now >= last + interval,
        };
        if due {
            self.flows[flow].last_cnp_ns = Some(self.now);
            let cnp = Packet::cnp(pkt.flow, host, pkt.src, pkt.psn, self.now);
            self.enqueue_port(host, 0, cnp);
        }
    }

    fn on_alpha_timer(&mut self, flow: usize, generation: u64) {
        let p = self.config.dcqcn;
        let Some(d) = self.flows[flow].dcqcn.as_mut() else {
            return;
        };
        if d.generation != generation {
            return; // superseded by a CNP
        }
        d.on_alpha_timer(&p);
        if self.flows[flow].remaining > 0 {
            self.schedule(
                self.now + p.alpha_timer_ns,
                Event::AlphaTimer { flow, generation },
            );
        }
    }

    fn on_rate_timer(&mut self, flow: usize, generation: u64) {
        let p = self.config.dcqcn;
        let Some(d) = self.flows[flow].dcqcn.as_mut() else {
            return;
        };
        if d.generation != generation {
            return;
        }
        d.on_rate_increase(true, &p);
        if self.flows[flow].remaining > 0 {
            self.schedule(
                self.now + p.rate_timer_ns,
                Event::RateTimer { flow, generation },
            );
        }
    }

    fn observe_queue(&mut self, node: NodeId, port: PortId) {
        if self.topo.is_host(node) {
            return;
        }
        let qlen = self.ports[node][port].qlen_bytes();
        // PFC trigger: XOFF the feeders when this queue crosses the pause
        // threshold, XON once it drains below the resume threshold.
        if let Some(pfc) = self.config.pfc {
            let asserting = self.pfc_asserting[node][port];
            if !asserting && qlen > pfc.xoff_bytes {
                self.pfc_asserting[node][port] = true;
                self.send_pause_frames(node, port, true);
            } else if asserting && qlen < pfc.xon_bytes {
                self.pfc_asserting[node][port] = false;
                self.send_pause_frames(node, port, false);
            }
        }
        if let Some((start, end, max)) = self.episode_trackers[node][port].observe(self.now, qlen) {
            if let Some(p) = self.part.as_mut() {
                p.tags.episode.push((self.now, self.cur_prio));
            }
            self.telemetry.episodes.push(QueueEpisode {
                switch: node,
                port,
                start_ns: start,
                end_ns: end,
                max_qlen: max,
            });
        }
        if self.config.collect_queue_dist {
            self.queue_dists[node][port].observe(self.now, qlen);
        }
    }

    /// Sends XOFF/XON frames from the switch whose queue (node, port) is
    /// congested to every neighbor that can feed that queue (all ports
    /// except the congested egress itself).
    fn send_pause_frames(&mut self, node: NodeId, congested_port: PortId, on: bool) {
        for q in 0..self.topo.ports(node) {
            if q == congested_port {
                continue;
            }
            let link = *self.topo.link_at(node, q);
            let (peer, peer_port) = link.peer(node);
            self.schedule(
                self.now + link.latency_ns,
                Event::Pause {
                    node: peer,
                    port: peer_port,
                    on,
                    triggered_by: node,
                },
            );
        }
    }

    fn flow_index(&self, id: FlowId) -> Option<usize> {
        // Flow ids are dense in the workloads; fall back to scan otherwise.
        let guess = id.0 as usize;
        if guess < self.flows.len() && self.flows[guess].spec.id == id {
            return Some(guess);
        }
        self.flows.iter().position(|f| f.spec.id == id)
    }

    fn finish(mut self) -> SimResult {
        // Close open episodes and the queue distribution. In partition mode
        // only owned switches carry state (and only they have dists
        // allocated); the merge reassembles the global picture.
        for node in self.topo.num_hosts..self.topo.num_nodes() {
            if !self.owns(node) {
                continue;
            }
            for port in 0..self.topo.ports(node) {
                if let Some((start, end, max)) = self.episode_trackers[node][port].flush(self.now) {
                    self.telemetry.episodes.push(QueueEpisode {
                        switch: node,
                        port,
                        start_ns: start,
                        end_ns: end,
                        max_qlen: max,
                    });
                }
            }
        }
        if self.config.collect_queue_dist {
            let mut merged = QueueLengthDist::new(1024);
            for node in self.topo.num_hosts..self.topo.num_nodes() {
                if !self.owns(node) {
                    continue;
                }
                for port in 0..self.topo.ports(node) {
                    self.queue_dists[node][port].finish(self.now);
                    merged.merge(&self.queue_dists[node][port]);
                }
            }
            self.telemetry.queue_dist = Some(merged);
        }
        // Account drops recorded inside ports too (host ports may drop),
        // plus the injected random losses.
        let port_drops: u64 = self
            .ports
            .iter()
            .flat_map(|ps| ps.iter().map(|p| p.drops))
            .sum();
        self.telemetry.drops =
            port_drops + self.telemetry.random_losses + self.telemetry.link_losses;

        let flows = self
            .flows
            .iter()
            .map(|f| FlowStats {
                spec: f.spec,
                sent_bytes: f.sent_bytes,
                delivered_bytes: f.delivered,
                packets_sent: f.packets_sent,
                fct_ns: f.fct_ns,
            })
            .collect();
        SimResult {
            telemetry: self.telemetry,
            flows,
            clocks: self.clocks,
            end_ns: self.now,
            events_processed: self.events_processed,
        }
    }
}

/// ECMP hash: control packets reverse-route on their own hash so CNPs/ACKs
/// need not share the data path.
fn flow_route_hash(flow: FlowId, kind: PacketKind) -> u64 {
    let tag = match kind {
        PacketKind::Data => 0u64,
        PacketKind::Cnp => 1,
        PacketKind::Ack { .. } => 2,
    };
    splitmix64(flow.0 ^ (tag << 61))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SimConfig {
        SimConfig {
            end_ns: 10_000_000,
            clock_error_ns: 0,
            ..SimConfig::default()
        }
    }

    fn one_flow(size: u64, cc: CongestionControl) -> Vec<FlowSpec> {
        vec![FlowSpec {
            id: FlowId(0),
            src: 0,
            dst: 1,
            size_bytes: size,
            start_ns: 0,
            cc,
        }]
    }

    #[test]
    fn single_dcqcn_flow_completes_and_conserves_bytes() {
        let topo = Topology::dumbbell(1, 100.0, 1000);
        let r = Simulator::new(
            topo,
            one_flow(1_000_000, CongestionControl::Dcqcn),
            quick_config(),
        )
        .run();
        let f = &r.flows[0];
        assert_eq!(f.sent_bytes, 1_000_000);
        assert_eq!(f.delivered_bytes, 1_000_000);
        assert!(f.fct_ns.is_some());
        assert_eq!(r.telemetry.drops, 0);
        assert_eq!(r.telemetry.injected_bytes, r.telemetry.delivered_bytes);
    }

    #[test]
    fn flow_completion_time_is_sane_for_line_rate() {
        // 1 MB at 100 Gbps ≈ 80 μs serialization + ~4 hops propagation.
        let topo = Topology::dumbbell(1, 100.0, 1000);
        let r = Simulator::new(
            topo,
            one_flow(1_000_000, CongestionControl::Dcqcn),
            quick_config(),
        )
        .run();
        let fct = r.flows[0].fct_ns.unwrap();
        assert!(fct > 80_000, "fct {fct} faster than line rate");
        assert!(fct < 200_000, "fct {fct} too slow for an uncontended path");
    }

    #[test]
    fn two_flows_share_bottleneck_and_get_marked() {
        let topo = Topology::dumbbell(2, 100.0, 1000);
        let flows = vec![
            FlowSpec {
                id: FlowId(0),
                src: 0,
                dst: 2,
                size_bytes: 4_000_000,
                start_ns: 0,
                cc: CongestionControl::Dcqcn,
            },
            FlowSpec {
                id: FlowId(1),
                src: 1,
                dst: 3,
                size_bytes: 4_000_000,
                start_ns: 0,
                cc: CongestionControl::Dcqcn,
            },
        ];
        let r = Simulator::new(topo, flows, quick_config()).run();
        // Two line-rate flows into one 100G link must congest the bottleneck
        // queue past kmin, yielding CE marks and at least one episode.
        assert!(
            !r.telemetry.mirror_candidates.is_empty(),
            "bottleneck must CE-mark packets"
        );
        assert!(!r.telemetry.episodes.is_empty(), "episode must be recorded");
        // And DCQCN must eventually deliver everything.
        for f in &r.flows {
            assert_eq!(f.delivered_bytes, 4_000_000, "flow {:?}", f.spec.id);
        }
        // Conservation: injected = delivered + dropped bytes (all data here
        // since no losses are retransmitted).
        assert_eq!(
            r.telemetry.injected_bytes,
            r.telemetry.delivered_bytes
                + r.flows
                    .iter()
                    .map(|f| f.sent_bytes - f.delivered_bytes)
                    .sum::<u64>()
        );
    }

    #[test]
    fn dctcp_flow_completes() {
        let topo = Topology::dumbbell(1, 100.0, 1000);
        let r = Simulator::new(
            topo,
            one_flow(500_000, CongestionControl::Dctcp),
            quick_config(),
        )
        .run();
        assert_eq!(r.flows[0].delivered_bytes, 500_000);
        assert!(r.flows[0].fct_ns.is_some());
    }

    #[test]
    fn fixed_rate_flow_paces_at_requested_rate() {
        let topo = Topology::dumbbell(1, 100.0, 1000);
        let r = Simulator::new(
            topo,
            one_flow(1_000_000, CongestionControl::FixedRate(10.0)),
            quick_config(),
        )
        .run();
        // 1 MB at 10 Gbps = 800 μs.
        let fct = r.flows[0].fct_ns.unwrap();
        assert!(fct > 780_000 && fct < 900_000, "fct {fct}");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let flows = |n: u64| -> Vec<FlowSpec> {
            (0..n)
                .map(|i| FlowSpec {
                    id: FlowId(i),
                    src: (i % 8) as usize,
                    dst: ((i + 8) % 16) as usize,
                    size_bytes: 50_000 + i * 1000,
                    start_ns: i * 10_000,
                    cc: CongestionControl::Dcqcn,
                })
                .collect()
        };
        let run = || {
            let topo = Topology::fat_tree(4, 100.0, 1000);
            Simulator::new(topo, flows(40), quick_config()).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.telemetry.tx_records.len(), b.telemetry.tx_records.len());
        assert_eq!(a.telemetry.tx_records, b.telemetry.tx_records);
        assert_eq!(a.telemetry.mirror_candidates, b.telemetry.mirror_candidates);
        assert_eq!(a.telemetry.episodes, b.telemetry.episodes);
    }

    /// The calendar queue and the binary heap implement the same
    /// `(time, seq)` total order, so swapping schedulers must not change a
    /// single bit of the simulation: identical flow statistics and identical
    /// telemetry on the fixed-seed fat-tree k=4 workload.
    #[test]
    fn scheduler_choice_does_not_change_results() {
        let flows = |n: u64| -> Vec<FlowSpec> {
            (0..n)
                .map(|i| FlowSpec {
                    id: FlowId(i),
                    src: (i % 8) as usize,
                    dst: ((i + 8) % 16) as usize,
                    size_bytes: 50_000 + i * 1000,
                    start_ns: i * 10_000,
                    cc: CongestionControl::Dcqcn,
                })
                .collect()
        };
        let run = |scheduler: SchedulerKind| {
            let topo = Topology::fat_tree(4, 100.0, 1000);
            let config = SimConfig {
                scheduler,
                ..quick_config()
            };
            Simulator::new(topo, flows(40), config).run()
        };
        let heap = run(SchedulerKind::Heap);
        let calendar = run(SchedulerKind::Calendar);
        assert_eq!(heap.flows, calendar.flows);
        assert_eq!(heap.events_processed, calendar.events_processed);
        assert_eq!(heap.end_ns, calendar.end_ns);
        assert_eq!(heap.telemetry.tx_records, calendar.telemetry.tx_records);
        assert_eq!(
            heap.telemetry.mirror_candidates,
            calendar.telemetry.mirror_candidates
        );
        assert_eq!(heap.telemetry.episodes, calendar.telemetry.episodes);
        assert_eq!(heap.telemetry.drops, calendar.telemetry.drops);
    }

    #[test]
    fn fat_tree_cross_pod_traffic_flows() {
        let topo = Topology::fat_tree(4, 100.0, 1000);
        let flows = vec![FlowSpec {
            id: FlowId(0),
            src: 0,
            dst: 15,
            size_bytes: 200_000,
            start_ns: 0,
            cc: CongestionControl::Dcqcn,
        }];
        let r = Simulator::new(topo, flows, quick_config()).run();
        assert_eq!(r.flows[0].delivered_bytes, 200_000);
        // Cross-pod RTT floor: 6 hops ≈ 6 μs one way.
        assert!(r.flows[0].fct_ns.unwrap() > 6 * 1000);
    }

    #[test]
    fn cnp_feedback_reduces_sender_rate() {
        // Heavy incast onto one receiver: all senders must be backed off
        // from line rate by CNPs, so the flows take much longer than the
        // no-contention serialization time.
        let topo = Topology::dumbbell(4, 100.0, 1000);
        let flows: Vec<FlowSpec> = (0..4)
            .map(|i| FlowSpec {
                id: FlowId(i),
                src: i as usize,
                dst: 4, // all into the first receiver
                size_bytes: 2_000_000,
                start_ns: 0,
                cc: CongestionControl::Dcqcn,
            })
            .collect();
        let mut config = quick_config();
        config.end_ns = 50_000_000;
        let r = Simulator::new(topo, flows, config).run();
        // The initial line-rate burst may overflow the buffer before CNPs
        // land (no retransmission in this model), but the vast majority of
        // bytes must arrive, every byte must be accounted for, and the
        // transfer must be far slower than uncontended line rate.
        let mut last_delivery = 0u64;
        for f in &r.flows {
            assert_eq!(f.sent_bytes, 2_000_000);
            assert!(
                f.delivered_bytes >= 1_800_000,
                "flow {:?} delivered only {}",
                f.spec.id,
                f.delivered_bytes
            );
            last_delivery = last_delivery.max(f.fct_ns.unwrap_or(r.end_ns));
        }
        // 8 MB over one 100 G link ≥ 640 μs even at perfect sharing.
        assert!(
            last_delivery > 600_000,
            "finished implausibly fast: {last_delivery}"
        );
        assert!(!r.telemetry.mirror_candidates.is_empty());
        // Conservation: injected = delivered + dropped bytes.
        let dropped: u64 = r.telemetry.injected_bytes - r.telemetry.delivered_bytes;
        assert_eq!(
            dropped,
            r.flows
                .iter()
                .map(|f| f.sent_bytes - f.delivered_bytes)
                .sum::<u64>()
        );
    }

    #[test]
    fn tx_records_cover_all_data_packets() {
        let topo = Topology::dumbbell(1, 100.0, 1000);
        let r = Simulator::new(
            topo,
            one_flow(100_000, CongestionControl::Dcqcn),
            quick_config(),
        )
        .run();
        assert_eq!(r.telemetry.tx_records.len() as u64, r.flows[0].packets_sent);
        let bytes: u64 = r.telemetry.tx_records.iter().map(|t| t.bytes as u64).sum();
        assert_eq!(bytes, 100_000);
    }

    #[test]
    fn mtu_partitioning_last_packet_is_remainder() {
        let topo = Topology::dumbbell(1, 100.0, 1000);
        let r = Simulator::new(
            topo,
            one_flow(2500, CongestionControl::Dcqcn),
            quick_config(),
        )
        .run();
        let sizes: Vec<u32> = r.telemetry.tx_records.iter().map(|t| t.bytes).collect();
        assert_eq!(sizes, vec![1000, 1000, 500]);
    }

    #[test]
    fn clock_error_shifts_tx_timestamps() {
        let topo = Topology::dumbbell(1, 100.0, 1000);
        let mut config = quick_config();
        config.clock_error_ns = 500;
        let r = Simulator::new(topo, one_flow(10_000, CongestionControl::Dcqcn), config).run();
        let offset = r.clocks.offset(0);
        assert!(offset.abs() <= 500);
    }

    #[test]
    fn pfc_makes_the_fabric_lossless() {
        // A 4:1 incast with a small switch buffer: without PFC this drops,
        // with PFC the pauses push the backlog to the senders instead.
        let incast = |pfc: Option<PfcConfig>| {
            let topo = Topology::dumbbell(4, 100.0, 1000);
            let flows: Vec<FlowSpec> = (0..4)
                .map(|i| FlowSpec {
                    id: FlowId(i),
                    src: i as usize,
                    dst: 4,
                    size_bytes: 1_500_000,
                    start_ns: 0,
                    cc: CongestionControl::Dcqcn,
                })
                .collect();
            let config = SimConfig {
                switch_buffer_bytes: 800 * 1024,
                pfc,
                end_ns: 50_000_000,
                clock_error_ns: 0,
                ..SimConfig::default()
            };
            Simulator::new(topo, flows, config).run()
        };
        let lossy = incast(None);
        assert!(
            lossy.telemetry.drops > 0,
            "small buffer must drop without PFC"
        );
        let lossless = incast(Some(PfcConfig {
            xoff_bytes: 400 * 1024,
            xon_bytes: 300 * 1024,
        }));
        assert_eq!(lossless.telemetry.drops, 0, "PFC fabric must not drop");
        assert!(
            !lossless.telemetry.pause_records.is_empty(),
            "pauses must have fired"
        );
        // Every byte still arrives (pauses only delay).
        for f in &lossless.flows {
            assert_eq!(f.delivered_bytes, 1_500_000, "flow {:?}", f.spec.id);
        }
        // XOFFs and XONs balance out (no port left paused forever).
        let on = lossless
            .telemetry
            .pause_records
            .iter()
            .filter(|p| p.on)
            .count();
        let off = lossless
            .telemetry
            .pause_records
            .iter()
            .filter(|p| !p.on)
            .count();
        assert_eq!(on, off, "every XOFF must be resumed");
    }

    #[test]
    fn pause_records_identify_the_congested_switch() {
        let topo = Topology::dumbbell(2, 100.0, 1000);
        let flows: Vec<FlowSpec> = (0..2)
            .map(|i| FlowSpec {
                id: FlowId(i),
                src: i as usize,
                dst: 2,
                size_bytes: 2_000_000,
                start_ns: 0,
                cc: CongestionControl::FixedRate(100.0), // no backoff → sustained pressure
            })
            .collect();
        let config = SimConfig {
            pfc: Some(PfcConfig {
                xoff_bytes: 100 * 1024,
                xon_bytes: 50 * 1024,
            }),
            end_ns: 50_000_000,
            clock_error_ns: 0,
            ..SimConfig::default()
        };
        let r = Simulator::new(topo, flows, config).run();
        assert!(!r.telemetry.pause_records.is_empty());
        // The bottleneck is switch 4's downlink queue (2:1 into one 100 G
        // receiver port): it must appear as a trigger.
        assert!(
            r.telemetry
                .pause_records
                .iter()
                .any(|p| p.triggered_by == 4),
            "the receiving-side switch must assert PFC"
        );
        assert_eq!(r.telemetry.drops, 0);
    }

    #[test]
    fn cnp_generation_respects_the_np_interval() {
        // Force heavy marking: two fixed-rate flows swamp one receiver so
        // nearly every packet is CE-marked; the NP must still emit at most
        // one CNP per flow per cnp_interval_ns.
        let topo = Topology::dumbbell(2, 100.0, 1000);
        let flows: Vec<FlowSpec> = (0..2)
            .map(|i| FlowSpec {
                id: FlowId(i),
                src: i as usize,
                dst: 2,
                size_bytes: 3_000_000,
                start_ns: 0,
                cc: CongestionControl::Dcqcn,
            })
            .collect();
        let mut config = quick_config();
        config.end_ns = 30_000_000;
        let r = Simulator::new(topo, flows, config).run();
        // Upper bound on CNPs: one per flow per interval over the active
        // span (plus one initial per flow).
        let span = r.end_ns;
        let interval = DcqcnParams::default().cnp_interval_ns;
        let bound = 2 * (span / interval + 2);
        // CNPs are not in the telemetry directly; infer from rate state —
        // instead check the marking volume is large while flows still
        // finish (pacing worked) in bounded time.
        assert!(
            r.telemetry.mirror_candidates.len() as u64 > bound,
            "the scenario must mark far more packets than CNPs allowed"
        );
        for f in &r.flows {
            assert_eq!(f.delivered_bytes, 3_000_000);
        }
    }

    #[test]
    fn host_watermark_defers_rather_than_drops() {
        // 16 line-rate flows from one host: the aggregate pacing far
        // exceeds the NIC, so the watermark must defer sends; the host
        // buffer never overflows and nothing is lost at the host.
        let topo = Topology::dumbbell(1, 100.0, 1000);
        let flows: Vec<FlowSpec> = (0..16)
            .map(|i| FlowSpec {
                id: FlowId(i),
                src: 0,
                dst: 1,
                size_bytes: 500_000,
                start_ns: 0,
                cc: CongestionControl::FixedRate(100.0),
            })
            .collect();
        let mut config = quick_config();
        config.end_ns = 100_000_000;
        let r = Simulator::new(topo, flows, config).run();
        assert_eq!(r.telemetry.drops, 0, "backpressure must prevent host drops");
        for f in &r.flows {
            assert_eq!(f.delivered_bytes, 500_000, "flow {:?}", f.spec.id);
        }
        // 8 MB over a 100 G NIC needs ≥ 640 μs — deferral must show up as
        // serialized completion, not parallel line-rate magic.
        let last = r.flows.iter().map(|f| f.fct_ns.unwrap()).max().unwrap();
        assert!(last > 600_000, "fct {last} too fast for a shared NIC");
    }

    #[test]
    fn random_loss_fault_injection_keeps_accounting_consistent() {
        let topo = Topology::dumbbell(1, 100.0, 1000);
        let mut config = quick_config();
        config.random_loss_probability = 0.01;
        let r = Simulator::new(topo, one_flow(2_000_000, CongestionControl::Dcqcn), config).run();
        // ~1% of ~2000 packets × 2 switch hops should be lost.
        assert!(r.telemetry.random_losses > 0, "injected losses must occur");
        assert_eq!(
            r.telemetry.drops, r.telemetry.random_losses,
            "no buffer overflows on an uncontended path"
        );
        // Conservation: sent = delivered + lost (data bytes only; losses
        // include some control packets, so compare at the flow level).
        let f = &r.flows[0];
        assert_eq!(f.sent_bytes, 2_000_000);
        assert!(f.delivered_bytes < f.sent_bytes);
        assert!(
            f.delivered_bytes > 1_800_000,
            "1% loss cannot eat 10% of bytes"
        );
    }

    #[test]
    fn deflect_on_drop_reports_lost_packets() {
        let topo = Topology::dumbbell(4, 100.0, 1000);
        let flows: Vec<FlowSpec> = (0..4)
            .map(|i| FlowSpec {
                id: FlowId(i),
                src: i as usize,
                dst: 4,
                size_bytes: 2_000_000,
                start_ns: 0,
                cc: CongestionControl::FixedRate(100.0),
            })
            .collect();
        let config = SimConfig {
            switch_buffer_bytes: 300 * 1024,
            deflect_on_drop: true,
            end_ns: 20_000_000,
            clock_error_ns: 0,
            ..SimConfig::default()
        };
        let r = Simulator::new(topo, flows, config).run();
        assert!(r.telemetry.drops > 0);
        assert_eq!(
            r.telemetry.drop_records.len() as u64,
            r.telemetry.drops,
            "every switch drop must be reported"
        );
        // Drop records carry enough context to identify victims.
        let victims: std::collections::HashSet<u64> =
            r.telemetry.drop_records.iter().map(|d| d.flow.0).collect();
        assert!(!victims.is_empty());
    }

    #[test]
    fn link_flap_stalls_traffic_and_recovers() {
        // One fixed-rate flow across a dumbbell; the bottleneck link flaps
        // for 1 ms mid-transfer. The flow must still finish (after the
        // outage), any packet serialized onto the dead link is lost, and the
        // accounting stays consistent.
        let run = |failures: FailureSchedule| {
            let topo = Topology::dumbbell(1, 100.0, 1000);
            // The bottleneck link is (switch 2, last port) <-> (switch 3, _):
            // flap it via the left switch's inter-switch port.
            let config = SimConfig {
                end_ns: 20_000_000,
                clock_error_ns: 0,
                failures,
                ..SimConfig::default()
            };
            Simulator::new(
                topo,
                one_flow(2_000_000, CongestionControl::FixedRate(50.0)),
                config,
            )
            .run()
        };
        let clean = run(FailureSchedule::none());
        assert_eq!(clean.telemetry.link_losses, 0);
        assert!(clean.telemetry.link_records.is_empty());

        let mut failures = FailureSchedule::none();
        // Switch 2 (left) port 1 is the bottleneck (port 0 is host 0's).
        failures.events.push(FailureEvent::LinkFlap {
            node: 2,
            port: 1,
            down_ns: 100_000,
            up_ns: 1_100_000,
        });
        let flapped = run(failures);
        assert_eq!(
            flapped.telemetry.link_records.len(),
            4,
            "2 changes × 2 ends"
        );
        assert!(
            flapped.telemetry.link_losses <= 1,
            "at most the in-flight packet dies"
        );
        // Everything not lost on the wire still arrives (losses are never
        // retransmitted in this model), just later: the last delivery is
        // pushed past the outage window.
        assert_eq!(
            flapped.telemetry.delivered_bytes,
            2_000_000 - flapped.telemetry.link_losses * 1000
        );
        assert!(
            flapped.end_ns >= clean.end_ns + 600_000,
            "outage must delay the last delivery: {} vs {}",
            flapped.end_ns,
            clean.end_ns
        );
    }

    #[test]
    fn injected_pause_storm_uses_the_pfc_machinery() {
        let topo = Topology::dumbbell(1, 100.0, 1000);
        let mut failures = FailureSchedule::none();
        failures.events.push(FailureEvent::PauseStorm {
            node: 2,
            port: 1,
            start_ns: 50_000,
            cycles: 5,
            pause_ns: 20_000,
            gap_ns: 10_000,
        });
        let config = SimConfig {
            end_ns: 20_000_000,
            clock_error_ns: 0,
            failures,
            ..SimConfig::default()
        };
        let r = Simulator::new(
            topo,
            one_flow(1_000_000, CongestionControl::FixedRate(50.0)),
            config,
        )
        .run();
        // 5 XOFF + 5 XON, all self-triggered (the injection marker).
        assert_eq!(r.telemetry.pause_records.len(), 10);
        assert!(r
            .telemetry
            .pause_records
            .iter()
            .all(|p| p.triggered_by == p.node));
        let xoffs = r.telemetry.pause_records.iter().filter(|p| p.on).count();
        assert_eq!(xoffs, 5);
        // Lossless: pauses delay but never drop.
        assert_eq!(r.telemetry.drops, 0);
        assert_eq!(r.flows[0].delivered_bytes, 1_000_000);
    }

    #[test]
    fn failure_injection_is_deterministic() {
        let run = || {
            let topo = Topology::fat_tree(4, 100.0, 1000);
            let mut failures = FailureSchedule::none();
            // Flap an edge→agg uplink and storm a different agg's downlink
            // (distinct physical links — same-link overlap is rejected).
            failures.events.push(FailureEvent::LinkFlap {
                node: 16,
                port: 2,
                down_ns: 200_000,
                up_ns: 700_000,
            });
            failures.events.push(FailureEvent::PauseStorm {
                node: 25,
                port: 0,
                start_ns: 300_000,
                cycles: 8,
                pause_ns: 15_000,
                gap_ns: 5_000,
            });
            let flows: Vec<FlowSpec> = (0..24)
                .map(|i| FlowSpec {
                    id: FlowId(i),
                    src: (i % 8) as usize,
                    dst: ((i + 8) % 16) as usize,
                    size_bytes: 80_000 + i * 777,
                    start_ns: i * 7_000,
                    cc: if i % 2 == 0 {
                        CongestionControl::Dcqcn
                    } else {
                        CongestionControl::Dctcp
                    },
                })
                .collect();
            let config = SimConfig {
                end_ns: 10_000_000,
                clock_error_ns: 0,
                failures,
                ..SimConfig::default()
            };
            Simulator::new(topo, flows, config).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.telemetry.tx_records, b.telemetry.tx_records);
        assert_eq!(a.telemetry.link_records, b.telemetry.link_records);
        assert_eq!(a.telemetry.pause_records, b.telemetry.pause_records);
        assert_eq!(a.telemetry.link_losses, b.telemetry.link_losses);
        assert_eq!(a.events_processed, b.events_processed);
        assert!(!a.telemetry.link_records.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid failure schedule")]
    fn overlapping_failures_are_rejected_at_construction() {
        let topo = Topology::dumbbell(1, 100.0, 1000);
        let mut failures = FailureSchedule::none();
        failures.events.push(FailureEvent::LinkFlap {
            node: 2,
            port: 1,
            down_ns: 0,
            up_ns: 100,
        });
        failures.events.push(FailureEvent::LinkFlap {
            node: 3,
            port: 1,
            down_ns: 50,
            up_ns: 150,
        });
        let config = SimConfig {
            failures,
            ..SimConfig::default()
        };
        let _ = Simulator::new(topo, Vec::new(), config);
    }

    #[test]
    fn queue_dist_collected_when_enabled() {
        let topo = Topology::dumbbell(2, 100.0, 1000);
        let flows = vec![
            FlowSpec {
                id: FlowId(0),
                src: 0,
                dst: 2,
                size_bytes: 1_000_000,
                start_ns: 0,
                cc: CongestionControl::Dcqcn,
            },
            FlowSpec {
                id: FlowId(1),
                src: 1,
                dst: 2,
                size_bytes: 1_000_000,
                start_ns: 0,
                cc: CongestionControl::Dcqcn,
            },
        ];
        let r = Simulator::new(topo, flows, quick_config()).run();
        let dist = r.telemetry.queue_dist.expect("enabled by default");
        assert!(
            dist.fraction_at_or_above(1024) > 0.0,
            "some queueing must occur"
        );
    }
}
