//! Property-based tests for the simulator's conservation and ordering
//! invariants (DESIGN.md §6) over randomized workloads.

use proptest::prelude::*;
use umon_netsim::{CongestionControl, FlowId, FlowSpec, PfcConfig, SimConfig, Simulator, Topology};

/// Random small flow sets on the fat-tree.
fn flows_strategy() -> impl Strategy<Value = Vec<FlowSpec>> {
    proptest::collection::vec(
        (0usize..16, 0usize..16, 1_000u64..300_000, 0u64..2_000_000),
        1..24,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .filter(|(_, (s, d, _, _))| s != d)
            .map(|(i, (src, dst, size, start))| FlowSpec {
                id: FlowId(i as u64),
                src,
                dst,
                size_bytes: size,
                start_ns: start,
                cc: CongestionControl::Dcqcn,
            })
            .collect()
    })
}

fn config(seed: u64) -> SimConfig {
    SimConfig {
        end_ns: 30_000_000,
        seed,
        clock_error_ns: 0,
        collect_queue_dist: false,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bytes are conserved: injected = delivered + dropped-or-inflight, and
    /// per-flow accounting agrees with the global tallies.
    #[test]
    fn byte_conservation(flows in flows_strategy(), seed in 0u64..100) {
        if flows.is_empty() {
            return Ok(());
        }
        let topo = Topology::fat_tree(4, 100.0, 1000);
        let r = Simulator::new(topo, flows.clone(), config(seed)).run();
        let sent: u64 = r.flows.iter().map(|f| f.sent_bytes).sum();
        let delivered: u64 = r.flows.iter().map(|f| f.delivered_bytes).sum();
        prop_assert_eq!(r.telemetry.injected_bytes, sent);
        prop_assert_eq!(r.telemetry.delivered_bytes, delivered);
        prop_assert!(delivered <= sent);
        // With a 30 ms horizon and ≤ 300 kB flows, everything completes and
        // nothing can be in flight; losses are the only shortfall.
        for f in &r.flows {
            prop_assert_eq!(f.sent_bytes, f.spec.size_bytes);
        }
    }

    /// Per-flow packets are delivered in PSN order (FIFO queues + per-flow
    /// stable ECMP ⇒ no reordering) — checked via the mirror tap, which
    /// preserves observation order per switch.
    #[test]
    fn no_reordering_at_any_tap(flows in flows_strategy(), seed in 0u64..100) {
        if flows.is_empty() {
            return Ok(());
        }
        let topo = Topology::fat_tree(4, 100.0, 1000);
        let r = Simulator::new(topo, flows, config(seed)).run();
        // TX records: per flow, PSNs increase with timestamps.
        let mut last: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for t in &r.telemetry.tx_records {
            let _ = t; // psn is not in TxRecord; ordering is by construction
        }
        // Mirror candidates: per (switch, port, flow) the PSN sequence must
        // be non-decreasing in record order (they are logged in event order).
        let mut seen: std::collections::HashMap<(usize, usize, u64), u64> =
            std::collections::HashMap::new();
        for m in &r.telemetry.mirror_candidates {
            if let Some(prev) = seen.insert((m.switch, m.port, m.flow.0), m.psn) {
                prop_assert!(m.psn > prev, "reordered PSN {} after {}", m.psn, prev);
            }
        }
        last.clear();
    }

    /// Episodes are well-formed: positive extent within the run, max queue
    /// at least the KMin threshold, and per-port episodes non-overlapping.
    #[test]
    fn episodes_are_well_formed(flows in flows_strategy(), seed in 0u64..100) {
        if flows.is_empty() {
            return Ok(());
        }
        let topo = Topology::fat_tree(4, 100.0, 1000);
        let cfg = config(seed);
        let kmin = cfg.ecn.kmin;
        let r = Simulator::new(topo, flows, cfg).run();
        let mut per_port: std::collections::HashMap<(usize, usize), Vec<(u64, u64)>> =
            std::collections::HashMap::new();
        for e in &r.telemetry.episodes {
            prop_assert!(e.end_ns >= e.start_ns);
            prop_assert!(e.end_ns <= r.end_ns);
            prop_assert!(e.max_qlen >= kmin);
            per_port.entry((e.switch, e.port)).or_default().push((e.start_ns, e.end_ns));
        }
        for spans in per_port.values_mut() {
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "episodes overlap: {w:?}");
            }
        }
    }

    /// With PFC enabled the fabric never drops, regardless of workload.
    #[test]
    fn pfc_is_always_lossless(flows in flows_strategy(), seed in 0u64..50) {
        if flows.is_empty() {
            return Ok(());
        }
        let topo = Topology::fat_tree(4, 100.0, 1000);
        let mut cfg = config(seed);
        cfg.switch_buffer_bytes = 1024 * 1024;
        cfg.pfc = Some(PfcConfig {
            xoff_bytes: 500 * 1024,
            xon_bytes: 400 * 1024,
        });
        let r = Simulator::new(topo, flows, cfg).run();
        prop_assert_eq!(r.telemetry.drops, 0);
        // All flows complete within the generous horizon.
        for f in &r.flows {
            prop_assert_eq!(f.delivered_bytes, f.spec.size_bytes,
                            "flow {:?} incomplete under PFC", f.spec.id);
        }
    }
}
