//! `umon` — the operator command line for the μMon reproduction.
//!
//! ```text
//! umon simulate --workload hadoop --load 0.15 --out trace.csv
//! umon measure  --trace trace.csv --out reports.json
//! umon detect   --trace trace.csv --sampling 64
//! umon replay   --trace trace.csv --reports reports.json
//! umon report   --trace trace.csv
//! ```
//!
//! `simulate` runs the packet-level fabric and archives the telemetry taps;
//! the other subcommands drive the μMon agents and analyzer over the trace
//! without re-simulating.

mod args;
mod render;

use args::{ArgError, Args};
use render::{downsample, fmt_bps, fmt_ns, sparkline};
use std::collections::HashMap;
use std::io::BufReader;
use umon::{Analyzer, HostAgent, HostAgentConfig, PeriodReport, SwitchAgent, SwitchAgentConfig};
use umon_netsim::{trace, MirrorCandidate, SimConfig, Simulator, Topology, TxRecord};
use umon_workloads::{WorkloadKind, WorkloadParams};

const HELP: &str = "umon — microsecond-level network monitoring (μMon reproduction)

USAGE:
  umon simulate --workload hadoop|websearch [--load 0.15] [--seed 1]
                [--duration-ms 20] [--out trace.csv]
  umon simulate --flows flows.txt [--seed 1] [--duration-ms 20]
                [--out trace.csv]      (custom flow specs, see umon-workloads)
  umon measure  --trace trace.csv [--out reports.json]
  umon detect   --trace trace.csv [--sampling 64] [--gap-us 50]
  umon replay   --trace trace.csv --reports reports.json [--sampling 8]
  umon report   --trace trace.csv
  umon help
";

fn main() {
    // Exit quietly when stdout closes early (e.g. `umon detect | head`):
    // a closed pipe is the reader's choice, not an error.
    std::panic::set_hook(Box::new(|info| {
        let msg = info.to_string();
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        eprintln!("{info}");
        std::process::exit(101);
    }));
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print!("{HELP}");
        return;
    }
    if let Err(e) = run(argv) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(argv: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "simulate" => cmd_simulate(&args),
        "measure" => cmd_measure(&args),
        "detect" => cmd_detect(&args),
        "replay" => cmd_replay(&args),
        "report" => cmd_report(&args),
        other => Err(Box::new(ArgError(format!(
            "unknown subcommand {other:?}; try `umon help`"
        )))),
    }
}

fn cmd_simulate(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["workload", "load", "seed", "duration-ms", "out", "flows"])?;
    let seed: u64 = args.num_or("seed", 1)?;
    let duration_ms: u64 = args.num_or("duration-ms", 20)?;
    let out = args.str_or("out", "trace.csv");

    let flows = if let Ok(path) = args.require("flows") {
        // Operator-supplied flow specs.
        let file = std::fs::File::open(&path)
            .map_err(|e| ArgError(format!("cannot open flow specs {path:?}: {e}")))?;
        let flows = umon_workloads::parse_flow_specs(BufReader::new(file))?;
        eprintln!(
            "simulating {} custom flows over a k=4 fat-tree ...",
            flows.len()
        );
        flows
    } else {
        let kind = match args.str_or("workload", "hadoop").as_str() {
            "hadoop" => WorkloadKind::Hadoop,
            "websearch" => WorkloadKind::WebSearch,
            w => return Err(Box::new(ArgError(format!("unknown workload {w:?}")))),
        };
        let load: f64 = args.num_or("load", 0.15)?;
        let params = WorkloadParams {
            duration_ns: duration_ms * 1_000_000,
            ..WorkloadParams::paper(kind, load, seed)
        };
        let flows = params.generate();
        eprintln!(
            "simulating {} at {:.0}% load: {} flows over {} ms on a k=4 fat-tree ...",
            kind.name(),
            load * 100.0,
            flows.len(),
            duration_ms
        );
        flows
    };
    let config = SimConfig {
        end_ns: duration_ms * 1_000_000 + 5_000_000,
        seed,
        ..SimConfig::default()
    };
    let result = Simulator::new(Topology::fat_tree(4, 100.0, 1000), flows, config).run();

    let mut file = std::io::BufWriter::new(std::fs::File::create(&out)?);
    trace::write_tx_records(&mut file, &result.telemetry.tx_records)?;
    trace::write_mirror_candidates(&mut file, &result.telemetry.mirror_candidates)?;
    println!(
        "wrote {}: {} data packets, {} CE-marked packets, {} queue episodes, {} drops",
        out,
        result.telemetry.tx_records.len(),
        result.telemetry.mirror_candidates.len(),
        result.telemetry.episodes.len(),
        result.telemetry.drops
    );
    Ok(())
}

fn load_trace(
    path: &str,
) -> Result<(Vec<TxRecord>, Vec<MirrorCandidate>), Box<dyn std::error::Error>> {
    let file = std::fs::File::open(path)
        .map_err(|e| ArgError(format!("cannot open trace {path:?}: {e}")))?;
    Ok(trace::read_trace(BufReader::new(file))?)
}

/// Runs host agents over a trace; returns (reports, observation span ns).
fn measure(tx: &[TxRecord]) -> (Vec<PeriodReport>, u64) {
    let span = tx.iter().map(|r| r.ts_ns).max().unwrap_or(0) + 1;
    let hosts: std::collections::BTreeSet<usize> = tx.iter().map(|r| r.host).collect();
    let mut reports = Vec::new();
    for &host in &hosts {
        let mut agent = HostAgent::new(host, HostAgentConfig::default());
        for r in tx.iter().filter(|r| r.host == host) {
            agent.observe(r.flow.0, r.ts_ns, r.bytes);
        }
        reports.extend(agent.finish());
    }
    (reports, span)
}

fn cmd_measure(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["trace", "out"])?;
    let (tx, _) = load_trace(&args.require("trace")?)?;
    if tx.is_empty() {
        return Err(Box::new(ArgError("trace has no tx records".into())));
    }
    let (reports, span) = measure(&tx);
    let out = args.str_or("out", "reports.json");
    std::fs::write(&out, serde_json::to_vec(&reports)?)?;
    let bytes: usize = reports.iter().map(PeriodReport::wire_bytes).sum();
    let hosts: std::collections::BTreeSet<usize> = tx.iter().map(|r| r.host).collect();
    println!(
        "wrote {}: {} period reports from {} hosts, {} on the wire",
        out,
        reports.len(),
        hosts.len(),
        fmt_bps(bytes as f64 * 8.0 / (span as f64 / 1e9) / hosts.len() as f64) + " per host"
    );
    Ok(())
}

/// Runs switch agents + clustering; returns the analyzer holding mirrors.
fn detect(ce: &[MirrorCandidate], sampling_shift: u32) -> Analyzer {
    let mut analyzer = Analyzer::new(HostAgentConfig::default().sketch);
    let switches: std::collections::BTreeSet<usize> = ce.iter().map(|m| m.switch).collect();
    for &switch in &switches {
        let mut agent = SwitchAgent::new(
            switch,
            SwitchAgentConfig {
                sampling_shift,
                ..Default::default()
            },
        );
        agent.ingest(ce);
        analyzer.add_mirrors(agent.drain());
    }
    analyzer
}

fn cmd_detect(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["trace", "sampling", "gap-us"])?;
    let (_, ce) = load_trace(&args.require("trace")?)?;
    let sampling: u64 = args.num_or("sampling", 64)?;
    let gap_us: u64 = args.num_or("gap-us", 50)?;
    let shift = sampling.max(1).ilog2();
    let analyzer = detect(&ce, shift);
    let events = analyzer.cluster_events(gap_us * 1000);
    println!(
        "{} CE packets → {} events at 1/{} sampling (gap {} us)\n",
        ce.len(),
        events.len(),
        1u64 << shift,
        gap_us
    );
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>6} {:>6}",
        "switch", "port", "start", "duration", "pkts", "flows"
    );
    for e in events.iter().take(30) {
        println!(
            "{:>8} {:>6} {:>12} {:>12} {:>6} {:>6}",
            e.switch,
            e.vlan - 1,
            fmt_ns(e.start_ns),
            fmt_ns(e.duration_ns()),
            e.packets,
            e.flows.len()
        );
    }
    if events.len() > 30 {
        println!("... and {} more", events.len() - 30);
    }
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["trace", "reports", "sampling"])?;
    let (tx, ce) = load_trace(&args.require("trace")?)?;
    let reports: Vec<PeriodReport> =
        serde_json::from_slice(&std::fs::read(args.require("reports")?)?)?;
    let sampling: u64 = args.num_or("sampling", 8)?;
    let mut analyzer = detect(&ce, sampling.max(1).ilog2());
    analyzer.add_reports(reports);

    let events = analyzer.cluster_events(50_000);
    let Some(event) = events.iter().max_by_key(|e| e.flows.len()) else {
        println!("no congestion events in the trace");
        return Ok(());
    };
    // Source host of each flow from the tx records.
    let host_of_flow: HashMap<u64, usize> = tx.iter().map(|r| (r.flow.0, r.host)).collect();
    let margin = 20u64 * 8192;
    let (windows, curves) =
        analyzer.replay_event(event, margin, 13, |f| host_of_flow.get(&f).copied());
    println!(
        "replaying the busiest event: switch {} port {} — {} over {}, {} flows\n",
        event.switch,
        event.vlan - 1,
        event.packets,
        fmt_ns(event.duration_ns()),
        event.flows.len()
    );
    let pre = 0..20usize;
    let during = 20..windows.len().saturating_sub(20).max(21);
    for (flow, values) in curves.iter().take(10) {
        let gbps: Vec<f64> = values.iter().map(|&b| b * 8.0 / 8192.0).collect();
        let (line, caption) = sparkline(&downsample(&gbps, 72), None);
        let role = umon::classify_event_role(values, pre.clone(), during.clone());
        println!("flow {flow:>6} [{role:?}]  {caption}");
        println!("  {line}");
    }
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["trace"])?;
    let (tx, ce) = load_trace(&args.require("trace")?)?;
    if tx.is_empty() {
        return Err(Box::new(ArgError("trace has no tx records".into())));
    }
    let span = tx.iter().map(|r| r.ts_ns).max().unwrap_or(0) + 1;
    let hosts: std::collections::BTreeSet<usize> = tx.iter().map(|r| r.host).collect();
    let bytes: u64 = tx.iter().map(|r| r.bytes as u64).sum();
    println!("trace summary");
    println!("  span:           {}", fmt_ns(span));
    println!("  hosts:          {}", hosts.len());
    println!(
        "  data:           {} packets / {:.1} MB",
        tx.len(),
        bytes as f64 / 1e6
    );
    let flows: std::collections::BTreeSet<u64> = tx.iter().map(|r| r.flow.0).collect();
    println!("  flows:          {}", flows.len());

    let (reports, _) = measure(&tx);
    let report_bytes: usize = reports.iter().map(PeriodReport::wire_bytes).sum();
    println!(
        "  μFlow upload:   {} per host",
        fmt_bps(report_bytes as f64 * 8.0 / (span as f64 / 1e9) / hosts.len() as f64)
    );

    let analyzer = detect(&ce, 6);
    let map = analyzer.congestion_map(50_000);
    println!(
        "  CE packets:     {} ({} mirrored at 1/64)",
        ce.len(),
        analyzer.mirrors().len()
    );
    println!("  congested links (top 5 by events):");
    for ((switch, vlan), spans) in map.iter().take(5) {
        println!(
            "    switch {switch} port {}: {} events",
            vlan - 1,
            spans.len()
        );
    }
    Ok(())
}
