//! Terminal rendering helpers: ASCII rate curves and aligned tables.

/// Renders a rate curve as an ASCII strip chart: one character per window,
/// height-coded 0–9 against `max` (auto-scaled when `max` is `None`).
/// Returns the chart line plus a scale caption.
pub fn sparkline(values: &[f64], max: Option<f64>) -> (String, String) {
    let peak = max.unwrap_or_else(|| values.iter().cloned().fold(0.0, f64::max));
    if peak <= 0.0 {
        return ("0".repeat(values.len()), "scale: flat".to_string());
    }
    let line: String = values
        .iter()
        .map(|&v| {
            let level = ((v / peak) * 9.0).round().clamp(0.0, 9.0) as u32;
            char::from_digit(level, 10).expect("0..=9")
        })
        .collect();
    (line, format!("scale: 9 = {peak:.1}"))
}

/// Down-samples a curve to at most `width` points by averaging fixed-size
/// chunks, so long curves fit a terminal row without losing their shape.
pub fn downsample(values: &[f64], width: usize) -> Vec<f64> {
    if values.is_empty() || width == 0 {
        return Vec::new();
    }
    if values.len() <= width {
        return values.to_vec();
    }
    let chunk = values.len().div_ceil(width);
    values
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Formats a bits-per-second figure with an adaptive unit.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2} Gbps", bps / 1e9)
    } else if bps >= 1e6 {
        format!("{:.2} Mbps", bps / 1e6)
    } else if bps >= 1e3 {
        format!("{:.2} Kbps", bps / 1e3)
    } else {
        format!("{bps:.0} bps")
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_peak() {
        let (line, caption) = sparkline(&[0.0, 5.0, 10.0], None);
        assert_eq!(line, "059");
        assert!(caption.contains("10.0"));
    }

    #[test]
    fn sparkline_flat_curve() {
        let (line, caption) = sparkline(&[0.0, 0.0], None);
        assert_eq!(line, "00");
        assert!(caption.contains("flat"));
    }

    #[test]
    fn sparkline_with_fixed_scale() {
        let (line, _) = sparkline(&[50.0], Some(100.0));
        assert_eq!(line, "5");
    }

    #[test]
    fn downsample_preserves_short_inputs() {
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
    }

    #[test]
    fn downsample_averages_chunks() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let out = downsample(&values, 10);
        assert_eq!(out.len(), 10);
        assert!((out[0] - 4.5).abs() < 1e-9); // mean of 0..10
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_bps(5.2e9), "5.20 Gbps");
        assert_eq!(fmt_bps(42e6), "42.00 Mbps");
        assert_eq!(fmt_bps(900.0), "900 bps");
        assert_eq!(fmt_ns(8_192), "8.2 us");
        assert_eq!(fmt_ns(20_000_000), "20.00 ms");
        assert_eq!(fmt_ns(55), "55 ns");
    }
}
