//! Minimal argument parsing for the `umon` CLI — a handful of `--key value`
//! flags per subcommand, no external parser needed (DESIGN.md §5 dependency
//! policy).

use std::collections::HashMap;

/// Parsed command line: the subcommand name and its `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: HashMap<String, String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ArgError> {
        let mut it = argv.into_iter();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand; try `umon help`".into()))?;
        if command.starts_with('-') {
            return Err(ArgError(format!(
                "expected a subcommand before flags, got {command:?}"
            )));
        }
        let mut flags = HashMap::new();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument {arg:?}")));
            };
            let value = it
                .next()
                .ok_or_else(|| ArgError(format!("flag --{key} needs a value")))?;
            if flags.insert(key.to_string(), value).is_some() {
                return Err(ArgError(format!("flag --{key} given twice")));
            }
        }
        Ok(Self { command, flags })
    }

    /// A string flag, or `default` when absent.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A required string flag.
    pub fn require(&self, key: &str) -> Result<String, ArgError> {
        self.flags
            .get(key)
            .cloned()
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// A numeric flag parsed as `T`, or `default` when absent.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("flag --{key}: cannot parse {v:?}"))),
        }
    }

    /// Rejects flags outside `allowed` so typos fail loudly.
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{key} for `{}` (allowed: {})",
                    self.command,
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Args, ArgError> {
        Args::parse(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn subcommand_and_flags() {
        let a = parse(&["simulate", "--load", "0.25", "--workload", "hadoop"]).unwrap();
        assert_eq!(a.command, "simulate");
        assert_eq!(a.str_or("workload", "x"), "hadoop");
        assert_eq!(a.num_or("load", 0.0).unwrap(), 0.25);
        assert_eq!(a.num_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--load", "1"]).is_err());
    }

    #[test]
    fn dangling_flag_value_is_an_error() {
        assert!(parse(&["simulate", "--load"]).is_err());
    }

    #[test]
    fn duplicate_flags_rejected() {
        assert!(parse(&["x", "--a", "1", "--a", "2"]).is_err());
    }

    #[test]
    fn unknown_flags_rejected_by_check() {
        let a = parse(&["detect", "--sampling", "64", "--oops", "1"]).unwrap();
        assert!(a.check_known(&["sampling", "trace"]).is_err());
        let a = parse(&["detect", "--sampling", "64"]).unwrap();
        assert!(a.check_known(&["sampling", "trace"]).is_ok());
    }

    #[test]
    fn require_reports_the_key() {
        let a = parse(&["measure"]).unwrap();
        let e = a.require("trace").unwrap_err();
        assert!(e.0.contains("--trace"));
    }

    #[test]
    fn bad_numbers_name_the_flag() {
        let a = parse(&["simulate", "--load", "abc"]).unwrap();
        let e = a.num_or("load", 0.0f64).unwrap_err();
        assert!(e.0.contains("--load"));
    }
}
