#!/usr/bin/env bash
# Repo CI gate: formatting, lints, then the tier-1 verify from ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

# Fixed-seed differential fuzz smoke: every WaveSketch variant against the
# exact oracle (see DESIGN.md §8). Deterministic, so a failure here is a real
# regression; the timeout is a budget guard, not an expected path.
echo "==> diff_fuzz smoke: 32 seeds x 3 workloads"
timeout 300 cargo run --release -q -p umon-testkit --bin diff_fuzz -- --seeds 32

# Same 32-seed oracle sweep with the Basic/Full/HW variants ingesting through
# update_batch (burst 257: not a multiple of the staging CHUNK, so remainder
# handling is covered), once on the auto-detected SIMD kernel and once pinned
# to the scalar fallback kernel. Batch-vs-scalar bit-identity is the
# tentpole's contract (DESIGN.md §15); this makes the exact oracle enforce it
# on every CI run for both kernel configurations.
echo "==> diff_fuzz smoke: batch ingest path, auto kernel"
UMON_DIFF_BATCH=257 timeout 300 \
  cargo run --release -q -p umon-testkit --bin diff_fuzz -- --seeds 32
echo "==> diff_fuzz smoke: batch ingest path, scalar fallback kernel"
UMON_DIFF_BATCH=257 UMON_BATCH_KERNEL=scalar timeout 300 \
  cargo run --release -q -p umon-testkit --bin diff_fuzz -- --seeds 32

# Fixed-seed parallel-vs-sequential netsim equivalence smoke: each seed's
# workload runs sequentially and at 1/2/4 partitions on the k=4 fat-tree;
# the full trace must be byte-identical and the drained host reports
# bit-identical (DESIGN.md §16). Deterministic, like diff_fuzz above.
echo "==> sim_equivalence smoke: 4 seeds x {1,2,4} partitions"
timeout 300 cargo run --release -q -p umon-testkit --bin sim_equivalence -- --seeds 4

# Fixed-seed collection-plane fault-injection smoke: period reports replayed
# over lossless, lossy and retransmission-healed transports against the
# collector's degradation contract (DESIGN.md §9). Deterministic, like
# diff_fuzz above.
echo "==> collector_smoke: 16 seeds x 3 workloads"
timeout 300 cargo run --release -q -p umon-testkit --bin collector_smoke -- --seeds 16

# Fixed-seed retention and crash-recovery smoke: the bounded-memory analyzer
# differential contract (compaction bit-invisible, eviction-to-archive
# queryable bit-identically through the cold tier, archive recovery
# reconvergent, torn tails contained and healed by backfill over the
# collection plane) plus a bounded-budget soak and an archive-backed cold
# soak whose checkpoints query the full history (DESIGN.md §12, §14).
# Deterministic, like the smokes above. Eviction bit-identity runs on every
# seed x workload; kill/recover + backfill reconvergence is scenario 5 of the
# same differential.
echo "==> retention_soak: 4 seeds x 3 workloads + soak + cold soak"
timeout 600 cargo run --release -q -p umon-testkit --bin retention_soak -- --seeds 4 --periods 1000

# Golden fixture gate: fixed-seed drain reports and analyzer query curves
# replayed against the bit-exact fixtures committed under tests/golden/
# (DESIGN.md §8, §11). A single reordered f64 addition fails this.
echo "==> golden fixtures: golden_gen --check"
timeout 300 cargo run --release -q -p umon-testkit --bin golden_gen -- --check

# Reproducible perf gate (DESIGN.md §10, §11, §14): runs the shortened
# fixed-seed bench workloads — sketch update, simulator event loop, and the
# analyzer query sweep — and fails if the committed BENCH_core.json /
# BENCH_netsim.json / BENCH_analyzer.json (including the hot → compacted →
# archived `cold` ladder and its segment-cache hit rate) are missing or
# contain non-finite metrics, then prints the smoke-vs-recorded delta. Smoke timings are NOT
# compared against thresholds — shared CI boxes
# are too noisy for that — so this catches bitrot (bench no longer builds or
# runs, records gone stale or corrupt), not slow regressions; refresh the
# committed numbers with `umon_bench --record` on a quiet machine.
echo "==> perf gate: umon_bench --smoke"
timeout 300 cargo run --release -q -p umon-bench --bin umon_bench -- --smoke

# Memory–accuracy frontier gate (DESIGN.md §13): validates the committed
# results/frontier_*.json files (every scenario × budget × scheme point must
# exist with finite, in-range metrics), then re-runs a shrunken sweep — two
# scenarios at two tiny budgets — fresh. Accuracy metrics are fully
# deterministic, so there are no noisy thresholds to tune: the gate fails
# only on missing files or invalid numbers. Regenerate the committed
# frontier with `umon_bench --record --only frontier` (byte-identical runs).
echo "==> frontier gate: umon_bench --smoke --only frontier"
timeout 300 cargo run --release -q -p umon-bench --bin umon_bench -- --smoke --only frontier

echo "CI green."
