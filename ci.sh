#!/usr/bin/env bash
# Repo CI gate: formatting, lints, then the tier-1 verify from ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

# Fixed-seed differential fuzz smoke: every WaveSketch variant against the
# exact oracle (see DESIGN.md §8). Deterministic, so a failure here is a real
# regression; the timeout is a budget guard, not an expected path.
echo "==> diff_fuzz smoke: 32 seeds x 3 workloads"
timeout 300 cargo run --release -q -p umon-testkit --bin diff_fuzz -- --seeds 32

# Fixed-seed collection-plane fault-injection smoke: period reports replayed
# over lossless, lossy and retransmission-healed transports against the
# collector's degradation contract (DESIGN.md §9). Deterministic, like
# diff_fuzz above.
echo "==> collector_smoke: 16 seeds x 3 workloads"
timeout 300 cargo run --release -q -p umon-testkit --bin collector_smoke -- --seeds 16

echo "CI green."
