//! Quickstart: measure a single flow's microsecond-level rate curve with
//! WaveSketch and inspect the compression.
//!
//! Run with: `cargo run --release --example quickstart`

use umon_repro::wavesketch::{
    window_of_ns, BasicWaveSketch, FlowKey, SketchConfig, DEFAULT_WINDOW_NS,
};

fn main() {
    // A WaveSketch with the paper's defaults: 3 hash rows × 256 buckets,
    // 8 wavelet levels, 64 retained detail coefficients per bucket, epochs
    // of up to 4096 windows of 8.192 μs.
    let config = SketchConfig::builder()
        .rows(3)
        .width(256)
        .levels(8)
        .topk(64)
        .max_windows(4096)
        .build();
    println!(
        "sketch memory: {:.1} KB ({} buckets of {} B)",
        config.basic_bytes() as f64 / 1024.0,
        config.rows * config.width,
        config.bucket_bytes()
    );
    let mut sketch = BasicWaveSketch::new(config);

    // A bursty flow: 100 Gbps bursts of 120 μs separated by 200 μs of
    // silence, packets of 1000 B every 80 ns within a burst.
    let flow = FlowKey::from_v4([10, 0, 0, 1], [10, 0, 0, 2], 4791, 4791, 17);
    let mut sent = 0u64;
    for burst in 0..10u64 {
        let burst_start = burst * 320_000; // ns
        let mut t = burst_start;
        while t < burst_start + 120_000 {
            sketch.update(&flow, window_of_ns(t), 1000);
            sent += 1000;
            t += 80;
        }
    }
    println!("fed {} bytes across 10 bursts", sent);

    // Query the reconstructed rate curve.
    let curve = sketch.query(&flow).expect("the flow was recorded");
    let total: f64 = curve.values.iter().sum();
    println!(
        "reconstructed total: {:.0} bytes of {} sent \
         (small drift comes from clamping negative reconstruction artifacts; \
         the pre-clamp total is exact because approximation coefficients are never dropped)",
        total, sent
    );

    // Print the curve in Gbps, one line per window with traffic.
    println!("\nrate curve (window = {} ns):", DEFAULT_WINDOW_NS);
    let mut shown = 0;
    for (i, &bytes) in curve.values.iter().enumerate() {
        if bytes > 1.0 && shown < 12 {
            let gbps = bytes * 8.0 / DEFAULT_WINDOW_NS as f64;
            let bar = "#".repeat((gbps / 4.0) as usize);
            println!(
                "  window {:>4}  {:>6.1} Gbps  {}",
                curve.start_window + i as u64,
                gbps,
                bar
            );
            shown += 1;
        }
    }
    println!("  ... ({} windows in the curve)", curve.values.len());
    assert!(
        (total - sent as f64).abs() / (sent as f64) < 0.05,
        "reconstructed volume must stay within 5% of the truth"
    );
}
