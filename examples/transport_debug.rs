//! Transport-algorithm debugging with microsecond-level rate curves
//! (§6.2 / B1): diagnose host-side starvation from rate-curve gaps and
//! check congestion-control fairness between two competing DCQCN flows.
//!
//! Run with: `cargo run --release --example transport_debug`

use umon_repro::umon::usecases::{fairness_index, find_gaps, idle_fraction};
use umon_repro::umon::{Analyzer, HostAgent, HostAgentConfig};
use umon_repro::umon_netsim::{
    CongestionControl, FlowId, FlowSpec, SimConfig, Simulator, Topology,
};

fn main() {
    // Two DCQCN flows share a dumbbell bottleneck.
    let topo = Topology::dumbbell(2, 100.0, 1000);
    let flows = vec![
        FlowSpec {
            id: FlowId(0),
            src: 0,
            dst: 2,
            size_bytes: 20_000_000,
            start_ns: 0,
            cc: CongestionControl::Dcqcn,
        },
        FlowSpec {
            id: FlowId(1),
            src: 1,
            dst: 3,
            size_bytes: 20_000_000,
            start_ns: 500_000, // joins 500 μs later
            cc: CongestionControl::Dcqcn,
        },
    ];
    let config = SimConfig {
        end_ns: 8_000_000,
        seed: 7,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows, config).run();

    // Measure both flows through μMon host agents.
    let agent_cfg = HostAgentConfig::default();
    let mut analyzer = Analyzer::new(agent_cfg.sketch.clone());
    for host in 0..4 {
        let mut agent = HostAgent::new(host, agent_cfg.clone());
        agent.ingest(&result.telemetry.tx_records);
        analyzer.add_reports(agent.finish());
    }

    let c0 = analyzer.flow_curve(0, 0).expect("flow 0 measured");
    let c1 = analyzer.flow_curve(1, 1).expect("flow 1 measured");

    // 1. Starvation check: a healthy backlogged flow has no inner gaps.
    let gaps0 = find_gaps(&c0.values, 1.0, 4);
    println!(
        "flow 0: {} inner gaps, idle fraction {:.3}",
        gaps0.len(),
        idle_fraction(&c0.values, 1.0, 4)
    );

    // 2. Fairness: compare average rates while both flows are active.
    let overlap_from = c1.start_window;
    let overlap_to = c0.end_window().min(c1.end_window());
    let avg = |c: &umon_repro::wavesketch::basic::WindowSeries| -> f64 {
        let vals: Vec<f64> = (overlap_from..overlap_to).map(|w| c.at(w)).collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let (r0, r1) = (avg(&c0), avg(&c1));
    let jain = fairness_index(&[r0, r1]);
    let gbps = |b: f64| b * 8.0 / 8192.0;
    println!(
        "overlap rates: flow 0 {:.1} Gbps, flow 1 {:.1} Gbps → Jain fairness {:.3}",
        gbps(r0),
        gbps(r1),
        jain
    );
    assert!(
        jain > 0.8,
        "DCQCN should share the bottleneck reasonably fairly (got {jain:.3})"
    );

    // 3. Convergence: flow 0 must come down from line rate after flow 1
    //    joins (the contention reaction visible only at μs granularity).
    let before: f64 = (0..40).map(|w| c0.at(w)).sum::<f64>() / 40.0;
    println!(
        "flow 0 before contention: {:.1} Gbps, during contention: {:.1} Gbps",
        gbps(before),
        gbps(r0)
    );
    assert!(before > r0, "contention must reduce flow 0's rate");
    println!("\n→ rate curves confirm DCQCN backs off and converges to a fair share");
}
