//! Fleet-scale monitoring: run μMon over a full data-center workload
//! (Hadoop at 15% load on a k=4 fat-tree) and print the operator's view —
//! measurement bandwidth per host, mirror bandwidth per switch, detected
//! congestion hot spots, and the heaviest flows' microsecond behavior.
//!
//! Run with: `cargo run --release --example fleet_monitor`

use umon_repro::umon::{Analyzer, HostAgent, HostAgentConfig, SwitchAgent, SwitchAgentConfig};
use umon_repro::umon_netsim::{SimConfig, Simulator, Topology};
use umon_repro::umon_workloads::{WorkloadKind, WorkloadParams};

fn main() {
    let params = WorkloadParams::paper(WorkloadKind::Hadoop, 0.15, 2026);
    let flows = params.generate();
    println!("workload: {} flows over 20 ms on 16 hosts", flows.len());
    let topo = Topology::fat_tree(4, 100.0, 1000);
    let config = SimConfig {
        end_ns: 25_000_000,
        seed: 2026,
        ..SimConfig::default()
    };
    let flow_specs = flows.clone();
    let result = Simulator::new(topo, flows, config).run();

    // μFlow agents at every host.
    let agent_cfg = HostAgentConfig::default();
    let mut analyzer = Analyzer::new(agent_cfg.sketch.clone());
    let mut total_report_bps = 0.0;
    for host in 0..16 {
        let mut agent = HostAgent::new(host, agent_cfg.clone());
        agent.ingest(&result.telemetry.tx_records);
        let reports = agent.finish();
        total_report_bps += HostAgent::report_bandwidth_bps(&reports, 20_000_000);
        analyzer.add_reports(reports);
    }
    println!(
        "μFlow upload: {:.1} Mbps total, {:.2} Mbps per host",
        total_report_bps / 1e6,
        total_report_bps / 16.0 / 1e6
    );

    // μEvent agents at every switch, 1/64 sampling.
    let sw_cfg = SwitchAgentConfig::default();
    let mut max_mirror = 0.0f64;
    for switch in 16..36 {
        let mut agent = SwitchAgent::new(switch, sw_cfg);
        agent.ingest(&result.telemetry.mirror_candidates);
        max_mirror = max_mirror.max(agent.mirror_bandwidth_bps(20_000_000));
        analyzer.add_mirrors(agent.drain());
    }
    println!(
        "μEvent mirror: max {:.1} Mbps per switch at 1/64 sampling",
        max_mirror / 1e6
    );

    // Congestion hot spots.
    let events = analyzer.cluster_events(50_000);
    let mut per_link: std::collections::BTreeMap<(usize, u16), usize> =
        std::collections::BTreeMap::new();
    for e in &events {
        *per_link.entry((e.switch, e.vlan)).or_default() += 1;
    }
    let mut hot: Vec<_> = per_link.into_iter().collect();
    hot.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\ncongestion hot spots (events per link):");
    for ((switch, vlan), n) in hot.iter().take(5) {
        println!("  switch {switch} port {}: {n} events", vlan - 1);
    }

    // The heaviest flow's microsecond-level profile.
    let heaviest = flow_specs
        .iter()
        .max_by_key(|f| f.size_bytes)
        .expect("non-empty workload");
    if let Some(curve) = analyzer.flow_curve(heaviest.src, heaviest.id.0) {
        let peak = curve.values.iter().cloned().fold(0.0, f64::max) * 8.0 / 8192.0;
        let active = curve.values.iter().filter(|&&v| v > 0.0).count();
        println!(
            "\nheaviest flow ({} MB, host {} → {}): peak {:.1} Gbps, active in {} windows",
            heaviest.size_bytes / 1_000_000,
            heaviest.src,
            heaviest.dst,
            peak,
            active
        );
    }
    println!(
        "\n→ one analyzer view over {} detected events and 16 hosts of rate curves",
        events.len()
    );
}
