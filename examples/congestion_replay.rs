//! End-to-end μMon pipeline: simulate an incast microburst on a fat-tree,
//! measure flows with WaveSketch host agents, capture the congestion event
//! with the ACL-mirror switch agents, and replay it on the analyzer
//! (the §6.2 "replay congestion events" use case).
//!
//! Run with: `cargo run --release --example congestion_replay`

use std::collections::HashMap;
use umon_repro::umon::{Analyzer, HostAgent, HostAgentConfig, SwitchAgent, SwitchAgentConfig};
use umon_repro::umon_netsim::{CongestionControl, SimConfig, Simulator, Topology};
use umon_repro::umon_workloads::incast_burst;

fn main() {
    // Fat-tree k=4 (16 hosts, 20 switches); eight senders burst 256 kB each
    // into host 0 at t = 1 ms — a classic incast microburst.
    let topo = Topology::fat_tree(4, 100.0, 1000);
    let flows = incast_burst(
        0,
        &[2, 3, 4, 5, 6, 7, 8, 9],
        0,
        256_000,
        1_000_000,
        0,
        0,
        CongestionControl::Dcqcn,
    );
    let host_of_flow: HashMap<u64, usize> = flows.iter().map(|f| (f.id.0, f.src)).collect();
    let config = SimConfig {
        end_ns: 5_000_000,
        seed: 42,
        ..SimConfig::default()
    };
    let result = Simulator::new(topo, flows, config).run();
    println!(
        "simulated: {} packets, {} CE-marked, {} queue episodes",
        result.telemetry.tx_records.len(),
        result.telemetry.mirror_candidates.len(),
        result.telemetry.episodes.len()
    );

    // μFlow: one WaveSketch host agent per sender.
    let agent_cfg = HostAgentConfig::default();
    let mut analyzer = Analyzer::new(agent_cfg.sketch.clone());
    for host in 0..16 {
        let mut agent = HostAgent::new(host, agent_cfg.clone());
        agent.ingest(&result.telemetry.tx_records);
        analyzer.add_reports(agent.finish());
    }

    // μEvent: ACL mirror with 1/8 PSN sampling on every switch.
    let sw_cfg = SwitchAgentConfig {
        sampling_shift: 3,
        ..Default::default()
    };
    for switch in 16..36 {
        let mut agent = SwitchAgent::new(switch, sw_cfg);
        agent.ingest(&result.telemetry.mirror_candidates);
        analyzer.add_mirrors(agent.drain());
    }

    // Cluster mirrors into events and replay the biggest one.
    let events = analyzer.cluster_events(50_000);
    println!("detected {} congestion events", events.len());
    let event = events
        .iter()
        .max_by_key(|e| e.flows.len())
        .expect("the incast must be detected");
    println!(
        "biggest event: switch {}, port {}, {:.1} μs, {} flows involved",
        event.switch,
        event.vlan - 1,
        event.duration_ns() as f64 / 1000.0,
        event.flows.len()
    );

    let (windows, curves) =
        analyzer.replay_event(event, 100_000, 13, |f| host_of_flow.get(&f).copied());
    println!(
        "\nreplay: {} windows around the event, {} flow curves",
        windows.len(),
        curves.len()
    );
    for (flow, values) in &curves {
        let peak_gbps = values.iter().cloned().fold(0.0, f64::max) * 8.0 / 8192.0;
        println!(
            "  flow {flow}: src host {}, peak {:.1} Gbps during the event",
            host_of_flow[flow], peak_gbps
        );
    }
    assert!(
        curves.len() >= 4,
        "the replay must recover most incast participants"
    );
    println!("\n→ the replay shows all incast senders converging on host 0's downlink");
}
