#![warn(missing_docs)]

//! Offline stand-in for `serde_json`: prints and parses JSON text for the
//! vendored [`serde`] facade's [`Value`] tree.
//!
//! Supports the workspace's usage: `to_string[_pretty]`, `to_vec`,
//! `from_str`, `from_slice` and a [`json!`] macro for object/array literals
//! with expression values (nest objects with explicit inner `json!` calls).

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt::Write as _;

/// Error for serialization or parsing failures.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON bytes into any deserializable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from a JSON-ish literal.
///
/// Object values and array elements are arbitrary serializable expressions;
/// nested object literals need an explicit inner `json!` call.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// --- printing --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                let start = out.len();
                let _ = write!(out, "{f}");
                // Keep floats float-shaped (`-2` → `-2.0`) so text round-trips
                // to the same Value variant, as upstream's ryu output does.
                if !out[start..].contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), write_value),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, val), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&byte) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this crate's
                            // printer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the lead byte.
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match byte {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .and_then(|c| std::str::from_utf8(c).ok())
                            .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                        out.push_str(chunk);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrips_through_text() {
        let v = json!({
            "a": 1,
            "b": json!([1.5, -2.0, 7]),
            "c": "hey \"quoted\" \\ line\nbreak",
            "d": u64::MAX,
            "e": json!({"nested": Value::Null, "truth": true}),
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn u64_precision_is_exact() {
        let text = to_string(&u64::MAX).unwrap();
        assert_eq!(text, "18446744073709551615");
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn typed_roundtrip_through_tuples_and_vecs() {
        let data: Vec<(u32, u32, Vec<i64>)> = vec![(1, 2, vec![-3, 4]), (5, 6, vec![])];
        let text = to_string(&data).unwrap();
        let back: Vec<(u32, u32, Vec<i64>)> = from_str(&text).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn from_slice_matches_from_str() {
        let v: Vec<u8> = from_slice(b"[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Value::String("μMon — 波".to_string());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }
}
