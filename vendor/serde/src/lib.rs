#![warn(missing_docs)]

//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so this vendored
//! crate provides the subset the workspace uses: `Serialize` / `Deserialize`
//! traits and their derive macros. Unlike upstream serde's zero-copy
//! streaming architecture, this facade round-trips through an owned JSON-like
//! [`Value`] tree — ample for the report archival / replay paths that use it.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree.
///
/// Integers are kept in an `i128` so the full `u64`/`i64` domains round-trip
/// exactly (config fingerprints are full-width hashes).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integral number (exact).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `name` in an object, or `None`.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up `name` in an object, with a descriptive error for derives.
    pub fn expect_field(&self, name: &str) -> Result<&Value, DeError> {
        self.field(name)
            .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected integer for {}, found {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128, i128);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError::new(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError::new(format!(
                                "expected {expected}-tuple, found array of {}", items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!("expected array, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&i64::MIN.to_value()).unwrap(), i64::MIN);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (3u32, -7i64, vec![1u8, 2]);
        assert_eq!(<(u32, i64, Vec<u8>)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn out_of_range_int_is_rejected() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.field("a"), Some(&Value::Int(1)));
        assert!(v.field("b").is_none());
        assert!(v.expect_field("b").is_err());
    }
}
