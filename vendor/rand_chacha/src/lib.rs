#![warn(missing_docs)]

//! Offline stand-in for the `rand_chacha` crate: [`ChaCha8Rng`], a
//! deterministic generator built on the real ChaCha stream cipher with 8
//! rounds. Output is high quality and stable across platforms, but no
//! bit-compatibility with the upstream crate is promised — everything in this
//! workspace only relies on a fixed seed producing a fixed stream.

use rand::{RngCore, SeedableRng};

/// One ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A deterministic RNG driven by the ChaCha block function with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, 64-bit
    /// nonce (zero).
    input: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    cursor: usize,
}

impl ChaCha8Rng {
    const ROUNDS: usize = 8;

    fn refill(&mut self) {
        let mut working = self.input;
        for _ in 0..Self::ROUNDS / 2 {
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &i)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.input.iter()))
        {
            *out = w.wrapping_add(i);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.input[12] as u64 | ((self.input[13] as u64) << 32)).wrapping_add(1);
        self.input[12] = counter as u32;
        self.input[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut input = [0u32; 16];
        // "expand 32-byte k"
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646e;
        input[2] = 0x7962_2d32;
        input[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            input[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            input,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[rng.gen_range(0usize..16)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (700..1300).contains(&b),
                "bucket {i} count {b} far from uniform"
            );
        }
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
