//! Offline stand-in for `serde_derive`.
//!
//! Provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` for plain
//! structs with named fields — the only shapes this workspace derives on.
//! The generated impls target the vendored `serde` facade's value-tree model
//! (`to_value` / `from_value`), not the streaming serializer architecture of
//! upstream serde. No `syn`/`quote`: the struct is parsed directly from the
//! token stream, which is robust for the supported shape (attributes and doc
//! comments are skipped, generics are rejected with a clear panic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving struct.
struct StructShape {
    name: String,
    /// Field name plus whether its type is spelled `Option<…>` — Option
    /// fields tolerate a missing key on deserialize (upstream serde's
    /// behavior), which lets bench-file schemas grow new optional sections
    /// without invalidating committed files.
    fields: Vec<(String, bool)>,
}

fn parse_struct(input: TokenStream) -> StructShape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility until the `struct` keyword.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "struct" => break,
            _ => i += 1,
        }
    }
    assert!(i < tokens.len(), "derive target must be a struct");
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic structs (deriving {name})");
    }

    // The next brace group holds the named fields.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("vendored serde_derive does not support tuple structs (deriving {name})")
            }
            Some(_) => i += 1,
            None => panic!("struct {name} has no braced field list"),
        }
    };

    let mut fields = Vec::new();
    let body: Vec<TokenTree> = body.into_iter().collect();
    let mut j = 0;
    while j < body.len() {
        // Skip field attributes (`#[...]`, including rendered doc comments).
        while matches!(&body[j], TokenTree::Punct(p) if p.as_char() == '#') {
            j += 2; // '#' + bracket group
        }
        // Skip visibility: `pub` optionally followed by `(...)`.
        if matches!(&body[j], TokenTree::Ident(id) if id.to_string() == "pub") {
            j += 1;
            if matches!(&body[j], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
                j += 1;
            }
        }
        let field_name = match &body[j] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name in {name}, found {other}"),
        };
        // Peek past the `:` at the type's leading ident to spot `Option<…>`.
        let is_option = matches!(
            (&body.get(j + 1), &body.get(j + 2)),
            (Some(TokenTree::Punct(p)), Some(TokenTree::Ident(ty)))
                if p.as_char() == ':' && ty.to_string() == "Option"
        );
        fields.push((field_name, is_option));
        // Skip to the comma that ends this field (groups are single trees, so
        // a top-level comma always terminates the field).
        while j < body.len() {
            if matches!(&body[j], TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            j += 1;
        }
        j += 1;
    }

    StructShape { name, fields }
}

/// Derives the vendored `serde::Serialize` (value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let entries: String = shape
        .fields
        .iter()
        .map(|(f, _)| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}",
        name = shape.name,
    );
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` (value-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let fields: String = shape
        .fields
        .iter()
        .map(|(f, is_option)| {
            if *is_option {
                // Missing key → Null → None, so files written before an
                // optional section existed keep loading.
                format!(
                    "{f}: ::serde::Deserialize::from_value(\
                         v.field(\"{f}\").unwrap_or(&::serde::Value::Null))?,"
                )
            } else {
                format!("{f}: ::serde::Deserialize::from_value(v.expect_field(\"{f}\")?)?,")
            }
        })
        .collect();
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok(Self {{ {fields} }})\n\
             }}\n\
         }}",
        name = shape.name,
    );
    code.parse().expect("generated Deserialize impl parses")
}
