#![warn(missing_docs)]

//! Offline stand-in for `criterion`.
//!
//! Keeps the upstream API shape used by this workspace (`criterion_group!`,
//! `benchmark_group`, `Throughput`, `BenchmarkId`, `Bencher::iter`) but
//! implements a much simpler measurement loop: per-sample wall-clock timing
//! with automatic inner batching, reporting mean / min ns per iteration and
//! derived throughput to stdout. No statistics engine, no HTML reports.

pub use std::hint::black_box;
use std::time::Instant;

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark label, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: size inner batches to ~2 ms so cheap
        // closures aren't dominated by timer resolution.
        let start = Instant::now();
        black_box(f());
        let single_ns = start.elapsed().as_nanos().max(1);
        let batch = (2_000_000 / single_ns).clamp(1, 65_536) as usize;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Runs `routine` on fresh values from `setup`; only `routine` is timed.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let single_ns = start.elapsed().as_nanos().max(1);
        let batch = (2_000_000 / single_ns).clamp(1, 65_536) as usize;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

/// Top-level harness handle; collects settings shared by its groups.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work used for derived throughput lines.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream flushes reports here; we print eagerly).
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let min = bencher.samples_ns.iter().cloned().fold(f64::MAX, f64::min);
    let mean = bencher.samples_ns.iter().sum::<f64>() / bencher.samples_ns.len() as f64;
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => format!("  thrpt: {}/s", scaled(n as f64 / (mean / 1e9))),
        Some(Throughput::Bytes(n)) => format!("  thrpt: {}B/s", scaled(n as f64 / (mean / 1e9))),
        None => String::new(),
    };
    println!(
        "{label:<48} time: [min {}  mean {}]{thrpt}",
        time(min),
        time(mean)
    );
}

fn time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn scaled(per_s: f64) -> String {
    if per_s >= 1e9 {
        format!("{:.2} G", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.2} M", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.2} K", per_s / 1e3)
    } else {
        format!("{per_s:.1} ")
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1u32)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
