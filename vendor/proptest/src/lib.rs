//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: range / tuple strategies,
//! `collection::{vec, btree_map}`, `.prop_map`, the `proptest!` /
//! `prop_assert*!` macros and `ProptestConfig::with_cases`. Sampling is
//! purely random (ChaCha8, seeded from the test name so runs are
//! deterministic); there is no shrinking — a failing case reports its inputs
//! via the assertion message instead of a minimized counterexample.
//!
//! Like upstream, failures can be pinned in a *regression file* next to the
//! test source: `<dir>/<file-stem>.proptest-regressions` holds `cc <digest>`
//! lines (one per pinned case) that are replayed before any random cases on
//! every run. Our digests encode the case's RNG seed in their first 16 hex
//! digits, so upstream-formatted files replay deterministically too. The
//! `PROPTEST_CASES` environment variable overrides the per-test case count,
//! again mirroring upstream.

use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::ops::Range;

/// The RNG handed to strategies; deterministic per (test name, case index).
pub type TestRng = rand_chacha::ChaCha8Rng;

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite quick while still
        // exercising plenty of structure.
        Self { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Collection strategies (`vec`, `btree_map`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// A random length drawn from a `usize` range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self(n..n + 1)
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.0.is_empty() {
                self.0.start
            } else {
                rng.gen_range(self.0.clone())
            }
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Maps of up to `size` entries (duplicate keys collapse, as upstream).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Resolves the regression file for a test source: the sibling
/// `<file-stem>.proptest-regressions` under the crate's own `tests/` or
/// `src/` directory (matching where the checked-in files live).
fn regression_path(manifest_dir: &str, source_file: &str) -> Option<std::path::PathBuf> {
    if manifest_dir.is_empty() || source_file.is_empty() {
        return None;
    }
    // `file!()` is workspace-relative; keep the part from the crate-local
    // `tests/` or `src/` component on and anchor it at the manifest dir.
    let suffix = if let Some(i) = source_file.rfind("tests/") {
        &source_file[i..]
    } else if let Some(i) = source_file.rfind("src/") {
        &source_file[i..]
    } else {
        source_file.rsplit('/').next()?
    };
    let stem = suffix.strip_suffix(".rs").unwrap_or(suffix);
    Some(std::path::Path::new(manifest_dir).join(format!("{stem}.proptest-regressions")))
}

/// Extracts the replay seed from a `cc <digest>` regression line: the first
/// 16 hex digits of the digest, as written by [`digest_for_seed`]. Upstream
/// digests are longer but equally stable, so they pin a case just as well.
fn seed_from_cc_line(line: &str) -> Option<u64> {
    let rest = line.trim().strip_prefix("cc ")?;
    let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
    if hex.len() < 16 {
        return None;
    }
    u64::from_str_radix(&hex[..16], 16).ok()
}

/// The digest written for a failing seed: 64 hex digits whose leading 16
/// encode the seed (the repetition keeps the upstream line shape).
fn digest_for_seed(seed: u64) -> String {
    format!("{seed:016x}").repeat(4)
}

#[doc(hidden)]
pub fn run_cases_at(
    config: &ProptestConfig,
    manifest_dir: &str,
    source_file: &str,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let persisted = regression_path(manifest_dir, source_file);
    let mut run_one = |seed: u64, origin: &str| {
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            let pin = persisted
                .as_ref()
                .map(|p| {
                    format!(
                        "\npin this case by adding the line below to {}:\ncc {}",
                        p.display(),
                        digest_for_seed(seed)
                    )
                })
                .unwrap_or_default();
            panic!("property `{test_name}` failed on {origin} (seed {seed:#x}): {e}{pin}");
        }
    };

    // Replay pinned regressions first, as upstream does.
    if let Some(text) = persisted
        .as_ref()
        .and_then(|p| std::fs::read_to_string(p).ok())
    {
        for (lineno, line) in text.lines().enumerate() {
            if let Some(seed) = seed_from_cc_line(line) {
                run_one(seed, &format!("regression line {}", lineno + 1));
            }
        }
    }

    // FNV-1a over the test name keeps seeds stable across runs and platforms.
    let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        name_hash ^= b as u64;
        name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    for index in 0..cases {
        let seed = name_hash.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1));
        run_one(seed, &format!("case {index}"));
    }
}

#[doc(hidden)]
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    run_cases_at(config, "", "", test_name, case);
}

#[doc(hidden)]
pub fn sample_map_keys<K: Ord + Clone, V>(m: &BTreeMap<K, V>) -> Vec<K> {
    m.keys().cloned().collect()
}

/// Declares deterministic random-sampling property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases_at(
                &$config,
                ::std::env!("CARGO_MANIFEST_DIR"),
                ::std::file!(),
                stringify!($name),
                |__proptest_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __proptest_rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    __result
                },
            );
        }
        $crate::__proptest_impl!(@config ($config) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_map_sizes(v in crate::collection::vec(0u32..10, 2..8),
                             m in crate::collection::btree_map(0u32..100, 0i64..5, 0..16)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(m.len() < 16);
        }

        #[test]
        fn prop_map_applies(v in crate::collection::vec(1u32..4, 1..5).prop_map(|v| v.len())) {
            prop_assert!((1..5).contains(&v));
        }

        #[test]
        fn early_ok_return_works(flag in 0u8..2) {
            if flag == 0 {
                return Ok(());
            }
            prop_assert_eq!(flag, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_form_compiles(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn cc_digest_roundtrip() {
        let seed = 0x1234_5678_9abc_def0u64;
        let line = format!("cc {} # shrinks to ...", crate::digest_for_seed(seed));
        assert_eq!(crate::seed_from_cc_line(&line), Some(seed));
        assert_eq!(crate::seed_from_cc_line("# comment"), None);
        assert_eq!(crate::seed_from_cc_line("cc 123"), None);
    }

    #[test]
    fn regression_paths_anchor_at_tests_or_src() {
        let p = crate::regression_path("/ws/crates/metrics", "crates/metrics/tests/properties.rs")
            .unwrap();
        assert_eq!(
            p,
            std::path::Path::new("/ws/crates/metrics/tests/properties.proptest-regressions")
        );
        let p = crate::regression_path("/ws", "tests/differential.rs").unwrap();
        assert_eq!(
            p,
            std::path::Path::new("/ws/tests/differential.proptest-regressions")
        );
        let p =
            crate::regression_path("/ws/vendor/proptest", "vendor/proptest/src/lib.rs").unwrap();
        assert_eq!(
            p,
            std::path::Path::new("/ws/vendor/proptest/src/lib.proptest-regressions")
        );
        assert!(crate::regression_path("", "x.rs").is_none());
    }

    #[test]
    fn regression_lines_replay_before_random_cases() {
        use rand::{RngCore, SeedableRng};
        let dir = std::env::temp_dir().join("umon-proptest-regress-test");
        std::fs::create_dir_all(dir.join("tests")).unwrap();
        let pinned = 0xdead_beef_0bad_f00du64;
        std::fs::write(
            dir.join("tests/pinned.proptest-regressions"),
            format!(
                "# comment line\ncc {} # shrinks to whatever\n",
                crate::digest_for_seed(pinned)
            ),
        )
        .unwrap();
        let mut seen = Vec::new();
        crate::run_cases_at(
            &ProptestConfig::with_cases(2),
            dir.to_str().unwrap(),
            "tests/pinned.rs",
            "pinned",
            |rng| {
                seen.push(rng.next_u64());
                Ok(())
            },
        );
        let expect = crate::TestRng::seed_from_u64(pinned).next_u64();
        assert!(seen.len() >= 2, "pinned + random cases expected");
        assert_eq!(seen[0], expect, "pinned seed must replay first");
    }

    #[test]
    fn determinism_same_name_same_values() {
        use crate::Strategy;
        let strat = crate::collection::vec(0u64..1_000_000, 5..10);
        let mut a = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(3), "det", |rng| {
            a.push(strat.sample(rng));
            Ok(())
        });
        let mut b = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(3), "det", |rng| {
            b.push(strat.sample(rng));
            Ok(())
        });
        assert_eq!(a, b);
    }
}
