#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API surface the workspace uses: the [`RngCore`],
//! [`Rng`] and [`SeedableRng`] traits with `gen_range` / `gen_bool`, plus the
//! range-sampling machinery behind them. The algorithms follow the upstream
//! crate's structure (widening-multiply range reduction, 53-bit float
//! construction, SplitMix64 seed expansion) but make no bit-compatibility
//! promise with upstream `rand` — determinism within this workspace is all
//! the tests rely on.

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniformly random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can sample themselves uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws a uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty, $unsigned:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sample range");
                let span = (high as $wide).wrapping_sub(low as $wide) as $unsigned;
                // Widening-multiply rejection-free reduction (Lemire); the
                // bias for the spans used in this workspace is negligible.
                let word = rng.next_u64() as u128;
                let hi = ((word * span as u128) >> 64) as $unsigned;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => i64, u64,
    u16 => i64, u64,
    u32 => i64, u64,
    u64 => i128, u64,
    usize => i128, u64,
    i8 => i64, u64,
    i16 => i64, u64,
    i32 => i64, u64,
    i64 => i128, u64,
    isize => i128, u64,
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty sample range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Argument conversion for [`Rng::gen_range`]: both `a..b` and `a..=b` work.
pub trait SampleRange<T> {
    /// Draws a sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                if high < <$t>::MAX {
                    <$t>::sample_range(rng, low, high + 1)
                } else if low > <$t>::MIN {
                    <$t>::sample_range(rng, low - 1, high).saturating_add(1)
                } else {
                    // Full domain: any word is a valid sample.
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array for every generator here).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 the
    /// same way `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 stream, taking 32 bits per step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak LCG is plenty for interface tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let inc: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = Counter(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
