//! Umbrella crate for the μMon reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See the individual crates for the real implementation:
//!
//! * [`wavesketch`] — the paper's core contribution (§4)
//! * [`umon_netsim`] — the packet-level data-center simulator (§7 setup)
//! * [`umon_workloads`] — WebSearch / Facebook Hadoop workload generators
//! * [`umon_baselines`] — Persist-CMS, OmniWindow-Avg and Fourier baselines
//! * [`umon`] — host agent, μEvent switch agent and the μMon analyzer (§5, §6)
//! * [`umon_metrics`] — the accuracy metrics of Appendix E

pub use umon;
pub use umon_baselines;
pub use umon_metrics;
pub use umon_netsim;
pub use umon_workloads;
pub use wavesketch;
